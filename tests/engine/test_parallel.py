"""Tests for the process-parallel drivers (repro.engine.parallel)."""

import pytest

from repro.baselines import FIGURE16_CONFIGS
from repro.benchmarks import r_benchmark_suite, run_figure16, run_suite
from repro.core import Example, Morpheus, SpecLevel, SynthesisConfig
from repro.dataframe import Table
from repro.engine import (
    KernelInterleaver,
    ParallelRunner,
    TaskContext,
    synthesize_batch,
    synthesize_portfolio,
)

#: Fast representative benchmarks (each solves in well under a second).
FAST_NAMES = [
    "c1_prices_long_to_wide",
    "c2_orders_count_by_region",
    "c5_join_filter_large_orders",
]

TIMEOUT = 30.0


def fast_suite():
    return r_benchmark_suite().subset(names=FAST_NAMES)


def outcome_fingerprint(run):
    return [
        (o.benchmark, o.category, o.configuration, o.solved, o.program_size)
        for o in run.outcomes
    ]


class TestParallelRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_default_jobs_is_at_least_one(self):
        assert ParallelRunner().jobs >= 1

    def test_parallel_suite_matches_serial(self):
        suite = fast_suite()
        serial = run_suite(suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2")
        parallel = ParallelRunner(jobs=2).run_suite(
            suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2"
        )
        assert outcome_fingerprint(parallel) == outcome_fingerprint(serial)

    def test_run_suite_jobs_parameter_routes_to_parallel_runner(self):
        suite = fast_suite()
        serial = run_suite(suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2")
        threaded = run_suite(
            suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2", jobs=2
        )
        assert outcome_fingerprint(threaded) == outcome_fingerprint(serial)

    def test_run_matrix_matches_serial_figure16(self):
        suite = fast_suite()
        serial = run_figure16(timeout=TIMEOUT, suite=suite)
        parallel = run_figure16(timeout=TIMEOUT, suite=suite, jobs=2)
        assert set(parallel) == set(serial)
        for label in serial:
            assert outcome_fingerprint(parallel[label]) == outcome_fingerprint(serial[label])

    def test_progress_callback_sees_every_outcome(self):
        suite = fast_suite()
        seen = []
        ParallelRunner(jobs=2).run_suite(
            suite,
            FIGURE16_CONFIGS["spec2"],
            timeout=TIMEOUT,
            label="spec2",
            progress=seen.append,
        )
        assert sorted(o.benchmark for o in seen) == sorted(suite.names())

    def test_jobs_one_is_a_serial_loop(self):
        suite = fast_suite()
        runner = ParallelRunner(jobs=1)
        run = runner.run_suite(suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2")
        assert [o.benchmark for o in run.outcomes] == suite.names()


class TestTaskContext:
    def test_active_isolates_intern_pool_and_counters(self):
        from repro.dataframe.interning import intern_pool_size, intern_value
        from repro.dataframe.profiling import execution_stats

        outer_size = intern_pool_size()
        context = TaskContext()
        with context.active():
            intern_value("only-in-context")
            intern_value("only-in-context")
            assert execution_stats() is context.execution
            assert context.execution.cells_interned == 1
        assert intern_pool_size() == outer_size
        assert execution_stats() is not context.execution

    def test_nested_install_is_rejected(self):
        context = TaskContext()
        with context.active():
            with pytest.raises(RuntimeError):
                context.install()
        with pytest.raises(RuntimeError):
            context.uninstall()

    def test_formula_cache_is_swapped(self):
        from repro.smt.solver import formula_cache_stats

        context = TaskContext()
        with context.active():
            assert formula_cache_stats() is context.formula_cache.stats
        assert formula_cache_stats() is not context.formula_cache.stats

    def test_context_cache_mirrors_configured_size(self):
        # Per-task caches must evict exactly like the process-wide cache a
        # caller configured, or interleaved and whole-task runs diverge.
        from repro.smt.solver import FORMULA_CACHE_SIZE, configure_formula_cache

        try:
            configure_formula_cache(77)
            assert TaskContext().formula_cache.maxsize == 77
        finally:
            configure_formula_cache(FORMULA_CACHE_SIZE)
        assert TaskContext().formula_cache.maxsize == FORMULA_CACHE_SIZE


class TestKernelInterleaver:
    def examples(self):
        suite = fast_suite()
        return [Example.make(b.inputs, b.output) for b in suite]

    def test_interleaved_results_match_dedicated_runs(self):
        config = SynthesisConfig(timeout=TIMEOUT)
        dedicated = []
        for example in self.examples():
            context = TaskContext()
            with context.active():
                dedicated.append(Morpheus(config=config).synthesize(example))
        interleaver = KernelInterleaver(slice_steps=5)
        for example in self.examples():
            interleaver.add(example, config)
        results = interleaver.run()
        assert len(results) == len(dedicated)
        for expected, actual in zip(dedicated, results):
            assert actual.solved == expected.solved
            assert actual.render() == expected.render()
            assert actual.stats.smt_calls == expected.stats.smt_calls
            assert actual.stats.frontier_peak == expected.stats.frontier_peak
            assert (
                actual.stats.completion.partial_programs
                == expected.stats.completion.partial_programs
            )
            assert actual.stats.tables_built == expected.stats.tables_built
            assert actual.stats.cells_interned == expected.stats.cells_interned

    def test_on_result_fires_once_per_task(self):
        config = SynthesisConfig(timeout=TIMEOUT)
        interleaver = KernelInterleaver()
        for example in self.examples():
            interleaver.add(example, config)
        seen = []
        interleaver.run(on_result=lambda index, result: seen.append(index))
        assert sorted(seen) == list(range(len(self.examples())))

    def test_rejects_invalid_slice_steps(self):
        with pytest.raises(ValueError):
            KernelInterleaver(slice_steps=0)

    def test_finished_driver_tasks_are_released(self):
        class FakeDriver:
            def __init__(self, slices):
                self.slices = slices

            def advance(self, max_steps):
                self.slices -= 1
                return self.slices <= 0

        interleaver = KernelInterleaver(slice_steps=1)
        interleaver.add_driver(FakeDriver(1))
        interleaver.add_driver(FakeDriver(3))
        assert interleaver.unfinished == 2
        while interleaver.pump():
            pass
        # Finished drivers leave the rotation *and* hold no task-list slot:
        # a long-lived service re-enrolls sessions on every resume, so any
        # retained reference would pin expired sessions in memory forever.
        assert interleaver.unfinished == 0
        assert len(interleaver._tasks) == 0
        interleaver.add_driver(FakeDriver(2))
        assert interleaver.unfinished == 1
        while interleaver.pump():
            pass
        assert interleaver.unfinished == 0
        assert len(interleaver._tasks) == 0

    def test_step_budget_bounds_an_untimed_search(self):
        # timeout=None + max_steps: the only budget is the deterministic
        # step count, so the run must terminate (and report unsolved) after
        # exactly the budget, independent of host speed.
        config = SynthesisConfig(timeout=None, max_steps=3)
        interleaver = KernelInterleaver(slice_steps=2)
        for example in self.examples():
            interleaver.add(example, config)
        results = interleaver.run()
        assert all(not result.solved for result in results)

    def test_step_budget_matches_dedicated_runs(self):
        # The deterministic slice mode: with a step budget the interleaver
        # cuts every kernel at the same frontier position as a dedicated
        # run, no matter how wall-clock time is divided across slices --
        # the fix for the PR 5 caveat where near-timeout tasks flipped
        # solve/timeout under --jobs on an oversubscribed host.
        for budget in (25, 10_000):
            config = SynthesisConfig(timeout=None, max_steps=budget)
            dedicated = []
            for example in self.examples():
                context = TaskContext()
                with context.active():
                    dedicated.append(Morpheus(config=config).synthesize(example))
            # slice_steps deliberately does not divide the budget evenly.
            interleaver = KernelInterleaver(slice_steps=7)
            for example in self.examples():
                interleaver.add(example, config)
            results = interleaver.run()
            for expected, actual in zip(dedicated, results):
                assert actual.solved == expected.solved
                assert actual.render() == expected.render()
                assert actual.stats.smt_calls == expected.stats.smt_calls
                assert actual.stats.frontier_peak == expected.stats.frontier_peak
                assert (
                    actual.stats.completion.partial_programs
                    == expected.stats.completion.partial_programs
                )

    def test_synthesize_batch_interleaved_matches_plain(self):
        config = SynthesisConfig(timeout=TIMEOUT)
        plain = synthesize_batch(self.examples(), config=config, jobs=1)
        interleaved = synthesize_batch(
            self.examples(), config=config, jobs=1, interleave=True
        )
        assert [r.render() for r in interleaved] == [r.render() for r in plain]
        assert [r.solved for r in interleaved] == [r.solved for r in plain]


class TestSynthesizeBatch:
    def examples(self):
        suite = fast_suite()
        return [Example.make(b.inputs, b.output) for b in suite]

    def test_results_come_back_in_input_order(self):
        examples = self.examples()
        config = SynthesisConfig(timeout=TIMEOUT)
        serial = [Morpheus(config=config).synthesize(e) for e in examples]
        batch = synthesize_batch(examples, config=config, jobs=2)
        assert len(batch) == len(examples)
        for expected, actual in zip(serial, batch):
            assert actual.solved == expected.solved
            assert actual.size == expected.size
            assert actual.render() == expected.render()

    def test_batch_is_deterministic_across_runs(self):
        examples = self.examples()
        config = SynthesisConfig(timeout=TIMEOUT)
        first = synthesize_batch(examples, config=config, jobs=2)
        second = synthesize_batch(examples, config=config, jobs=2)
        assert [r.render() for r in first] == [r.render() for r in second]

    def test_accepts_inputs_output_pairs(self):
        inputs = [Table(["a", "b", "c"], [[1, 2, 3], [4, 5, 6]])]
        output = Table(["a", "b"], [[1, 2], [4, 5]])
        results = synthesize_batch([(inputs, output)], jobs=1,
                                   config=SynthesisConfig(timeout=TIMEOUT))
        assert results[0].solved

    def test_rejects_invalid_jobs(self):
        with pytest.raises(ValueError):
            synthesize_batch([], jobs=-2)


class TestSynthesizePortfolio:
    def example(self):
        inputs = [Table(["a", "b", "c"], [[1, 2, 3], [4, 5, 6]])]
        output = Table(["a", "b"], [[1, 2], [4, 5]])
        return inputs, output

    def test_requires_at_least_one_config(self):
        with pytest.raises(ValueError):
            synthesize_portfolio(self.example(), [])

    def test_serial_portfolio_prefers_earlier_configs(self):
        configs = [
            SynthesisConfig(timeout=TIMEOUT),
            SynthesisConfig(deduction=False, timeout=TIMEOUT),
        ]
        portfolio = synthesize_portfolio(self.example(), configs, jobs=1)
        assert portfolio.solved
        assert portfolio.winner == configs[0].describe()
        assert portfolio.attempts == 1

    def test_parallel_portfolio_returns_a_solution(self):
        configs = [
            SynthesisConfig(timeout=TIMEOUT),
            SynthesisConfig(deduction=False, timeout=TIMEOUT),
        ]
        portfolio = synthesize_portfolio(self.example(), configs, jobs=2)
        assert portfolio.solved
        assert portfolio.winner in {c.describe() for c in configs}
        assert 1 <= portfolio.attempts <= len(configs)

    def test_unsolvable_example_returns_first_config_result(self):
        # An output whose values cannot be produced from the input.
        inputs = [Table(["a", "b"], [[1, 2], [3, 4]])]
        output = Table(["zz"], [["impossible"]])
        configs = [
            SynthesisConfig(timeout=2.0, max_size=1),
            SynthesisConfig(timeout=2.0, max_size=1, spec_level=SpecLevel.SPEC1),
        ]
        portfolio = synthesize_portfolio((inputs, output), configs, jobs=1)
        assert not portfolio.solved
        assert portfolio.winner is None
        assert portfolio.attempts == len(configs)
