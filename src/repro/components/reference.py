"""Row-major reference implementations of the component semantics.

This module retains the pre-columnar executor: every verb walks
``table.rows`` cell by cell and rebuilds its output through the row-major
:class:`~repro.dataframe.table.Table` constructor, exactly as the original
implementation did.  It exists for one purpose -- to pin the semantics of the
columnar executors in :mod:`repro.components.dplyr` and
:mod:`repro.components.tidyr`: a differential property test runs random
programs over random tables through both implementations and requires
identical outputs (cells, schema, grouping metadata) or identical errors.

Grouping metadata propagates through rebuilding verbs by the same uniform
rule as the columnar executors (see
:func:`repro.components.dplyr.surviving_group_cols`).

Do not use these executors in the synthesizer; they are deliberately the
slow path.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataframe.cells import (
    CellType,
    CellValue,
    format_value,
    infer_column_type,
    value_sort_key,
)
from ..dataframe.table import Table
from .dplyr import GroupContext, RowExpression, RowPredicate, _join_key, surviving_group_cols
from .errors import EvaluationError, InvalidArgumentError
from .values import AGGREGATORS, agg_count

_SEPARATE_PATTERN = re.compile(r"[^0-9A-Za-z.]+")

DEFAULT_SEPARATOR = "_"


def _check_columns_exist(table: Table, columns: Sequence[str], verb: str) -> None:
    for name in columns:
        if not table.has_column(name):
            raise InvalidArgumentError(f"{verb}: column {name!r} not in table {list(table.columns)}")


# ----------------------------------------------------------------------
# dplyr verbs (row-major)
# ----------------------------------------------------------------------
def select(table: Table, columns: Sequence[str]) -> Table:
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("select: must keep at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("select: selected columns must be distinct")
    _check_columns_exist(table, columns, "select")
    if len(columns) >= table.n_cols:
        raise EvaluationError("select: selection must drop at least one column")
    indices = [table.column_index(name) for name in columns]
    rows = [tuple(row[index] for index in indices) for row in table.rows]
    col_types = [table.col_types[index] for index in indices]
    group_cols = [name for name in table.group_cols if name in columns]
    return Table(columns, rows, col_types, group_cols)


def filter_rows(table: Table, predicate: RowPredicate) -> Table:
    kept = [row for index, row in enumerate(table.rows) if predicate(table.row_dict(index))]
    if len(kept) == len(table.rows):
        raise EvaluationError("filter: predicate keeps every row")
    return Table(table.columns, kept, table.col_types, table.group_cols)


def group_by(table: Table, columns: Sequence[str]) -> Table:
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("group_by: must group by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("group_by: grouping columns must be distinct")
    _check_columns_exist(table, columns, "group_by")
    return table.with_grouping(columns)


def summarise(
    table: Table,
    new_column: str,
    aggregator: str,
    target_column: str = None,
) -> Table:
    if aggregator not in AGGREGATORS:
        raise InvalidArgumentError(f"summarise: unknown aggregator {aggregator!r}")
    if aggregator != "n":
        if target_column is None:
            raise InvalidArgumentError(f"summarise: aggregator {aggregator!r} needs a target column")
        _check_columns_exist(table, [target_column], "summarise")
    group_columns = list(table.group_cols)
    if new_column in group_columns:
        raise EvaluationError(f"summarise: new column {new_column!r} collides with a grouping column")

    out_rows: List[Tuple[CellValue, ...]] = []
    for key, row_indices in table.group_row_indices():
        if aggregator == "n":
            value = agg_count([None] * len(row_indices))
        else:
            column_index = table.column_index(target_column)
            values = [table.rows[i][column_index] for i in row_indices]
            value = AGGREGATORS[aggregator](values)
        out_rows.append(tuple(key) + (value,))

    out_columns = group_columns + [new_column]
    result = Table(out_columns, out_rows)
    remaining_groups = group_columns[:-1]
    if remaining_groups:
        result = result.with_grouping(remaining_groups)
    return result


def mutate(table: Table, new_column: str, expression: RowExpression) -> Table:
    if table.has_column(new_column):
        raise EvaluationError(f"mutate: column {new_column!r} already exists")
    group_of_row: Dict[int, GroupContext] = {}
    for _key, row_indices in table.group_row_indices():
        context = GroupContext(table, row_indices)
        for row_index in row_indices:
            group_of_row[row_index] = context

    values: List[CellValue] = []
    for row_index in range(table.n_rows):
        context = group_of_row.get(row_index, GroupContext(table, range(table.n_rows)))
        values.append(expression(table.row_dict(row_index), context))

    columns = list(table.columns) + [new_column]
    rows = [tuple(row) + (values[index],) for index, row in enumerate(table.rows)]
    col_types = list(table.col_types) + [infer_column_type(values)]
    return Table(columns, rows, col_types, table.group_cols)


def inner_join(left: Table, right: Table) -> Table:
    shared = [name for name in left.columns if right.has_column(name)]
    if not shared:
        raise EvaluationError("inner_join: tables share no columns")
    left_indices = [left.column_index(name) for name in shared]
    right_indices = [right.column_index(name) for name in shared]
    right_extra = [name for name in right.columns if name not in shared]
    right_extra_indices = [right.column_index(name) for name in right_extra]

    buckets: Dict[Tuple, List[Tuple[CellValue, ...]]] = {}
    for row in right.rows:
        key = tuple(_join_key(row[index]) for index in right_indices)
        buckets.setdefault(key, []).append(row)

    out_rows: List[Tuple[CellValue, ...]] = []
    for row in left.rows:
        key = tuple(_join_key(row[index]) for index in left_indices)
        for match in buckets.get(key, ()):
            out_rows.append(tuple(row) + tuple(match[index] for index in right_extra_indices))

    out_columns = list(left.columns) + right_extra
    if not out_rows:
        raise EvaluationError("inner_join: join result is empty")
    return Table(out_columns, out_rows, group_cols=surviving_group_cols(left, out_columns))


def arrange(table: Table, columns: Sequence[str], descending: bool = False) -> Table:
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("arrange: must sort by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("arrange: sort columns must be distinct")
    _check_columns_exist(table, columns, "arrange")
    indices = [table.column_index(name) for name in columns]

    def key(row):
        return tuple(value_sort_key(row[index]) for index in indices)

    rows = sorted(table.rows, key=key, reverse=descending)
    return Table(table.columns, rows, table.col_types, table.group_cols)


# ----------------------------------------------------------------------
# tidyr verbs (row-major)
# ----------------------------------------------------------------------
def gather(table: Table, key: str, value: str, columns: Sequence[str]) -> Table:
    columns = list(columns)
    if len(columns) < 2:
        raise InvalidArgumentError("gather: must gather at least two columns")
    _check_columns_exist(table, columns, "gather")
    if len(columns) >= table.n_cols:
        raise EvaluationError("gather: cannot gather every column of the table")
    id_columns = [name for name in table.columns if name not in set(columns)]
    if key in id_columns or value in id_columns or key == value:
        raise InvalidArgumentError("gather: key/value names collide with remaining columns")

    gathered_types = {table.column_type(name) for name in columns}
    value_type = CellType.NUM if gathered_types == {CellType.NUM} else CellType.STR

    id_indices = [table.column_index(name) for name in id_columns]
    out_rows: List[Tuple[CellValue, ...]] = []
    for gathered in columns:
        gathered_index = table.column_index(gathered)
        for row in table.rows:
            cell = row[gathered_index]
            if value_type is CellType.STR and cell is not None:
                cell = format_value(cell)
            out_rows.append(tuple(row[index] for index in id_indices) + (gathered, cell))

    out_columns = id_columns + [key, value]
    out_types = [table.column_type(name) for name in id_columns] + [CellType.STR, value_type]
    return Table(
        out_columns, out_rows, out_types,
        group_cols=surviving_group_cols(table, id_columns),
    )


def spread(table: Table, key: str, value: str) -> Table:
    if key == value:
        raise InvalidArgumentError("spread: key and value must be different columns")
    _check_columns_exist(table, [key, value], "spread")

    id_columns = [name for name in table.columns if name not in (key, value)]
    if not id_columns:
        raise EvaluationError("spread: no identifier columns remain")
    id_indices = [table.column_index(name) for name in id_columns]
    key_index = table.column_index(key)
    value_index = table.column_index(value)

    key_values: List[CellValue] = []
    for row in table.rows:
        if row[key_index] is None:
            raise EvaluationError("spread: key column contains a missing value")
        if row[key_index] not in key_values:
            key_values.append(row[key_index])
    key_values.sort(key=value_sort_key)
    new_columns = [format_value(key_value) for key_value in key_values]
    if len(set(new_columns)) != len(new_columns):
        raise EvaluationError("spread: key values collide after formatting")
    for name in new_columns:
        if name in id_columns:
            raise EvaluationError(f"spread: new column {name!r} collides with an existing column")

    groups: List[Tuple[CellValue, ...]] = []
    cells = {}
    for row in table.rows:
        group_key = tuple(row[index] for index in id_indices)
        if group_key not in cells:
            groups.append(group_key)
            cells[group_key] = {}
        column_name = format_value(row[key_index])
        if column_name in cells[group_key]:
            raise EvaluationError("spread: duplicate identifiers for rows")
        cells[group_key][column_name] = row[value_index]

    out_rows = []
    for group_key in groups:
        out_rows.append(group_key + tuple(cells[group_key].get(name) for name in new_columns))

    out_columns = id_columns + new_columns
    return Table(
        out_columns, out_rows,
        group_cols=surviving_group_cols(table, id_columns),
    )


def separate(
    table: Table,
    column: str,
    into: Sequence[str],
    separator: Optional[str] = None,
) -> Table:
    _check_columns_exist(table, [column], "separate")
    into = list(into)
    if len(into) != 2:
        raise InvalidArgumentError("separate: exactly two target column names are supported")
    if len(set(into)) != len(into):
        raise InvalidArgumentError("separate: target column names must be distinct")
    for name in into:
        if name != column and table.has_column(name):
            raise EvaluationError(f"separate: column {name!r} already exists")

    column_index = table.column_index(column)
    left_values: List[CellValue] = []
    right_values: List[CellValue] = []
    for row in table.rows:
        cell = row[column_index]
        if cell is None:
            left_values.append(None)
            right_values.append(None)
            continue
        text = format_value(cell)
        if separator is not None:
            parts = text.split(separator, 1)
        else:
            parts = _SEPARATE_PATTERN.split(text, maxsplit=1)
        if len(parts) != 2 or not parts[0] or not parts[1]:
            raise EvaluationError(f"separate: value {text!r} cannot be split into two pieces")
        left_values.append(parts[0])
        right_values.append(parts[1])

    out_columns = []
    out_rows_columns = []
    for name in table.columns:
        if name == column:
            out_columns.extend(into)
            out_rows_columns.append(left_values)
            out_rows_columns.append(right_values)
        else:
            out_columns.append(name)
            out_rows_columns.append(list(table.column_values(name)))

    out_rows = list(zip(*out_rows_columns)) if out_rows_columns else []
    return Table(
        out_columns, out_rows,
        group_cols=surviving_group_cols(table, [c for c in table.columns if c != column]),
    )


def unite(
    table: Table,
    new_column: str,
    columns: Sequence[str],
    separator: str = DEFAULT_SEPARATOR,
) -> Table:
    columns = list(columns)
    if len(columns) < 2:
        raise InvalidArgumentError("unite: need at least two columns to unite")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("unite: columns to unite must be distinct")
    _check_columns_exist(table, columns, "unite")
    if table.has_column(new_column) and new_column not in columns:
        raise EvaluationError(f"unite: column {new_column!r} already exists")

    column_indices = [table.column_index(name) for name in columns]
    united_values = []
    for row in table.rows:
        pieces = [format_value(row[index]) for index in column_indices]
        united_values.append(separator.join(pieces))

    first_position = min(table.column_index(name) for name in columns)
    out_columns: List[str] = []
    out_columns_values: List[List[CellValue]] = []
    inserted = False
    for position, name in enumerate(table.columns):
        if name in columns:
            if position == first_position and not inserted:
                out_columns.append(new_column)
                out_columns_values.append(united_values)
                inserted = True
            continue
        out_columns.append(name)
        out_columns_values.append(list(table.column_values(name)))
    if not inserted:
        out_columns.insert(0, new_column)
        out_columns_values.insert(0, united_values)

    out_rows = list(zip(*out_columns_values)) if out_columns_values else []
    return Table(
        out_columns, out_rows,
        group_cols=surviving_group_cols(table, [c for c in table.columns if c not in columns]),
    )


#: Reference implementation of every table transformer, by verb name.
REFERENCE_VERBS = {
    "select": select,
    "filter": filter_rows,
    "group_by": group_by,
    "summarise": summarise,
    "mutate": mutate,
    "inner_join": inner_join,
    "arrange": arrange,
    "gather": gather,
    "spread": spread,
    "separate": separate,
    "unite": unite,
}
