"""Tests for the tidyr verbs: gather, spread, separate, unite."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.components import EvaluationError, InvalidArgumentError, gather, separate, spread, unite
from repro.dataframe import CellType, Table


@pytest.fixture
def wide():
    return Table(
        ["id", "year", "A", "B"],
        [[1, 2007, 5, 10], [2, 2007, 3, 50], [1, 2009, 5, 17], [2, 2009, 6, 17]],
    )


@pytest.fixture
def long():
    return Table(
        ["product", "store", "price"],
        [["pen", "north", 2], ["pen", "south", 3], ["pad", "north", 5], ["pad", "south", 4]],
    )


class TestGather:
    def test_shape(self, wide):
        result = gather(wide, "var", "val", ["A", "B"])
        assert result.columns == ("id", "year", "var", "val")
        assert result.n_rows == 8

    def test_key_column_holds_source_names(self, wide):
        result = gather(wide, "var", "val", ["A", "B"])
        assert set(result.column_values("var")) == {"A", "B"}

    def test_values_preserved(self, wide):
        result = gather(wide, "var", "val", ["A", "B"])
        assert sorted(result.column_values("val")) == sorted([5, 3, 5, 6, 10, 50, 17, 17])

    def test_requires_two_columns(self, wide):
        with pytest.raises(InvalidArgumentError):
            gather(wide, "var", "val", ["A"])

    def test_cannot_gather_everything(self, wide):
        with pytest.raises(EvaluationError):
            gather(wide, "var", "val", ["id", "year", "A", "B"])

    def test_unknown_column(self, wide):
        with pytest.raises(InvalidArgumentError):
            gather(wide, "var", "val", ["A", "nope"])

    def test_mixed_types_coerce_to_string(self):
        table = Table(["id", "num", "word"], [[1, 3, "x"], [2, 4, "y"]])
        result = gather(table, "k", "v", ["num", "word"])
        assert result.column_type("v") is CellType.STR
        assert "3" in result.column_values("v")

    def test_key_name_collision_rejected(self, wide):
        with pytest.raises(InvalidArgumentError):
            gather(wide, "id", "val", ["A", "B"])


class TestSpread:
    def test_shape(self, long):
        result = spread(long, "store", "price")
        assert result.columns == ("product", "north", "south")
        assert result.n_rows == 2

    def test_cell_placement(self, long):
        result = spread(long, "store", "price")
        by_product = {row[0]: row for row in result.rows}
        assert by_product["pen"] == ("pen", 2, 3)
        assert by_product["pad"] == ("pad", 5, 4)

    def test_missing_combination_becomes_na(self):
        table = Table(["id", "k", "v"], [[1, "a", 10], [1, "b", 20], [2, "a", 30]])
        result = spread(table, "k", "v")
        assert result.cell(1, "b") is None

    def test_duplicate_identifiers_rejected(self):
        table = Table(["id", "k", "v"], [[1, "a", 10], [1, "a", 20]])
        with pytest.raises(EvaluationError):
            spread(table, "k", "v")

    def test_missing_key_rejected(self):
        table = Table(["id", "k", "v"], [[1, None, 10], [2, "a", 20]])
        with pytest.raises(EvaluationError):
            spread(table, "k", "v")

    def test_key_equals_value_rejected(self, long):
        with pytest.raises(InvalidArgumentError):
            spread(long, "price", "price")

    def test_needs_identifier_columns(self):
        table = Table(["k", "v"], [["a", 1], ["b", 2]])
        with pytest.raises(EvaluationError):
            spread(table, "k", "v")

    def test_numeric_keys_become_column_names(self):
        table = Table(["id", "year", "v"], [[1, 2020, 7], [1, 2021, 9]])
        result = spread(table, "year", "v")
        assert result.columns == ("id", "2020", "2021")

    def test_gather_spread_roundtrip(self, wide):
        gathered = gather(wide, "var", "val", ["A", "B"])
        widened = spread(gathered, "var", "val")
        assert widened.header_set() == wide.header_set()
        assert widened.n_rows == wide.n_rows


class TestSeparate:
    def test_default_separator(self):
        table = Table(["key", "v"], [["a_1", 10], ["b_2", 20]])
        result = separate(table, "key", ["letter", "number"])
        assert result.columns == ("letter", "number", "v")
        assert result.column_values("letter") == ("a", "b")
        assert result.column_values("number") == ("1", "2")

    def test_explicit_separator(self):
        table = Table(["key"], [["a-1"], ["b-2"]], )
        result = separate(table, "key", ["l", "r"], separator="-")
        assert result.column_values("r") == ("1", "2")

    def test_unsplittable_value_rejected(self):
        table = Table(["key"], [["plain"]])
        with pytest.raises(EvaluationError):
            separate(table, "key", ["l", "r"])

    def test_missing_cell_stays_missing(self):
        table = Table(["key", "x"], [["a_1", 1], [None, 2]])
        result = separate(table, "key", ["l", "r"])
        assert result.cell(1, "l") is None

    def test_existing_target_name_rejected(self):
        table = Table(["key", "l"], [["a_1", 1]])
        with pytest.raises(EvaluationError):
            separate(table, "key", ["l", "r"])

    def test_two_targets_required(self):
        table = Table(["key"], [["a_1"]])
        with pytest.raises(InvalidArgumentError):
            separate(table, "key", ["only"])


class TestUnite:
    def test_basic(self):
        table = Table(["a", "b", "x"], [["p", "q", 1], ["r", "s", 2]])
        result = unite(table, "ab", ["a", "b"])
        assert result.columns == ("ab", "x")
        assert result.column_values("ab") == ("p_q", "r_s")

    def test_numbers_are_formatted(self):
        table = Table(["name", "year", "x"], [["a", 2020, 1]])
        result = unite(table, "label", ["name", "year"])
        assert result.column_values("label") == ("a_2020",)

    def test_order_matters(self):
        table = Table(["a", "b", "x"], [["p", "q", 1]])
        assert unite(table, "u", ["b", "a"]).column_values("u") == ("q_p",)

    def test_position_of_new_column(self):
        table = Table(["x", "a", "b"], [[1, "p", "q"]])
        assert unite(table, "u", ["a", "b"]).columns == ("x", "u")

    def test_requires_two_distinct_columns(self):
        table = Table(["a", "b"], [["p", "q"]])
        with pytest.raises(InvalidArgumentError):
            unite(table, "u", ["a"])
        with pytest.raises(InvalidArgumentError):
            unite(table, "u", ["a", "a"])

    def test_separate_unite_roundtrip(self):
        table = Table(["key", "v"], [["a_1", 10], ["b_2", 20]])
        split = separate(table, "key", ["l", "r"])
        rejoined = unite(split, "key", ["l", "r"])
        assert rejoined.column_values("key") == ("a_1", "b_2")


class TestReshapeProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-10, 10), st.integers(-10, 10)),
            min_size=1,
            max_size=10,
        )
    )
    def test_gather_row_count(self, rows):
        # Make identifiers unique to keep the example well-formed.
        rows = [(index, a, b) for index, (_, a, b) in enumerate(rows)]
        table = Table(["id", "p", "q"], rows)
        gathered = gather(table, "k", "v", ["p", "q"])
        assert gathered.n_rows == 2 * table.n_rows
        assert gathered.n_cols == table.n_cols

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(-10, 10), st.integers(-10, 10)),
            min_size=1,
            max_size=10,
            unique_by=lambda row: row[0],
        )
    )
    def test_gather_spread_is_identity_on_values(self, rows):
        table = Table(["id", "p", "q"], rows)
        roundtrip = spread(gather(table, "k", "v", ["p", "q"]), "k", "v")
        assert roundtrip.header_set() == table.header_set()
        assert sorted(roundtrip.column_values("p")) == sorted(table.column_values("p"))
