"""Regression: grouping metadata survives every component uniformly.

Before the columnar refactor the reshaping verbs (``gather``, ``spread``,
``separate``, ``unite``) and ``inner_join`` rebuilt their output tables ad
hoc and silently dropped ``group_cols``.  The uniform propagation rule
(:func:`repro.components.dplyr.surviving_group_cols`) is: the output stays
grouped by every grouping column that survives into the output schema;
``summarise`` keeps its dplyr-specific behaviour of dropping the last
grouping level.
"""

from repro.components import (
    arrange,
    filter_rows,
    gather,
    group_by,
    inner_join,
    mutate,
    select,
    separate,
    spread,
    summarise,
    unite,
)
from repro.dataframe import Table


def grouped_table():
    return group_by(
        Table(
            ["g", "k", "a", "b"],
            [
                ["x", "p", 1, 2],
                ["x", "q", 3, 4],
                ["y", "p", 5, 6],
                ["y", "q", 7, 8],
            ],
        ),
        ["g"],
    )


def test_select_keeps_surviving_groups():
    assert select(grouped_table(), ["g", "a"]).group_cols == ("g",)


def test_select_drops_vanished_groups():
    assert select(grouped_table(), ["a", "b"]).group_cols == ()


def test_filter_keeps_groups():
    result = filter_rows(grouped_table(), lambda row: row["g"] == "x")
    assert result.group_cols == ("g",)


def test_arrange_keeps_groups():
    assert arrange(grouped_table(), ["a"]).group_cols == ("g",)


def test_mutate_keeps_groups():
    result = mutate(grouped_table(), "s", lambda row, group: row["a"] + 1)
    assert result.group_cols == ("g",)


def test_gather_keeps_surviving_groups():
    result = gather(grouped_table(), "key", "value", ["a", "b"])
    assert result.group_cols == ("g",)


def test_gather_drops_gathered_group_column():
    table = group_by(grouped_table().ungrouped(), ["a"])
    result = gather(table, "key", "value", ["a", "b"])
    assert result.group_cols == ()


def test_spread_keeps_surviving_groups():
    result = spread(grouped_table(), "k", "a")
    assert result.group_cols == ("g",)


def test_spread_drops_key_group_column():
    table = group_by(grouped_table().ungrouped(), ["k"])
    result = spread(table, "k", "a")
    assert result.group_cols == ()


def test_separate_keeps_surviving_groups():
    table = group_by(
        Table(["g", "v"], [["x", "a_1"], ["x", "b_2"], ["y", "c_3"]]), ["g"]
    )
    result = separate(table, "v", ["left", "right"])
    assert result.group_cols == ("g",)


def test_separate_drops_split_group_column():
    table = group_by(
        Table(["g", "v"], [["x_0", "a_1"], ["y_0", "b_2"]]), ["g"]
    )
    result = separate(table, "g", ["left", "right"])
    assert result.group_cols == ()


def test_unite_keeps_surviving_groups():
    result = unite(grouped_table(), "ab", ["a", "b"])
    assert result.group_cols == ("g",)


def test_unite_drops_united_group_column():
    result = unite(grouped_table(), "gk", ["g", "k"])
    assert result.group_cols == ()


def test_inner_join_keeps_left_groups():
    left = grouped_table()
    right = Table(["k", "extra"], [["p", 10], ["q", 20]])
    result = inner_join(left, right)
    assert result.group_cols == ("g",)


def test_summarise_drops_last_grouping_level_only():
    table = group_by(grouped_table().ungrouped(), ["g", "k"])
    result = summarise(table, "total", "sum", "a")
    assert result.group_cols == ("g",)


def test_group_by_sets_groups():
    assert group_by(grouped_table().ungrouped(), ["g", "k"]).group_cols == ("g", "k")


def test_propagated_groups_feed_n_groups():
    # The Spec-2 T.group attribute sees the propagated metadata.
    result = gather(grouped_table(), "key", "value", ["a", "b"])
    assert result.n_groups == 2
