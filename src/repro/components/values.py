"""First-order value transformers (the paper's :math:`\\Lambda_v`).

These are the building blocks of the first-order functions that fill the
non-table holes of a sketch: aggregate functions used by ``summarise`` and
``mutate``, and binary operators used by ``filter`` predicates and ``mutate``
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..dataframe.cells import CellValue, is_missing, is_numeric, normalize_number
from .errors import EvaluationError


# ----------------------------------------------------------------------
# Aggregate functions (list of values -> single value)
# ----------------------------------------------------------------------
def _numeric_values(values: Sequence[CellValue], operation: str) -> Tuple[float, ...]:
    present = [value for value in values if not is_missing(value)]
    if not present:
        raise EvaluationError(f"{operation}() applied to an empty column")
    for value in present:
        if not is_numeric(value):
            raise EvaluationError(f"{operation}() applied to non-numeric value {value!r}")
    return tuple(float(value) for value in present)


def agg_sum(values: Sequence[CellValue]) -> CellValue:
    """``sum``: the sum of a numeric column."""
    return normalize_number(sum(_numeric_values(values, "sum")))


def agg_mean(values: Sequence[CellValue]) -> CellValue:
    """``mean``: the arithmetic mean of a numeric column."""
    numbers = _numeric_values(values, "mean")
    return normalize_number(sum(numbers) / len(numbers))


def agg_min(values: Sequence[CellValue]) -> CellValue:
    """``min``: the minimum of a numeric column."""
    return normalize_number(min(_numeric_values(values, "min")))


def agg_max(values: Sequence[CellValue]) -> CellValue:
    """``max``: the maximum of a numeric column."""
    return normalize_number(max(_numeric_values(values, "max")))


def agg_count(values: Sequence[CellValue]) -> CellValue:
    """``n()``: the number of rows (missing values included, like dplyr)."""
    return len(values)


def agg_n_distinct(values: Sequence[CellValue]) -> CellValue:
    """``n_distinct()``: the number of distinct values."""
    seen = set()
    for value in values:
        seen.add(None if is_missing(value) else str(value) if not is_numeric(value) else float(value))
    return len(seen)


#: Aggregate functions by their surface (R) name.
AGGREGATORS: Dict[str, Callable[[Sequence[CellValue]], CellValue]] = {
    "sum": agg_sum,
    "mean": agg_mean,
    "min": agg_min,
    "max": agg_max,
    "n": agg_count,
    "n_distinct": agg_n_distinct,
}

#: Aggregators that require a target column (``n()`` does not).
COLUMN_AGGREGATORS: Tuple[str, ...] = ("sum", "mean", "min", "max", "n_distinct")


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------
def _comparable(left: CellValue, right: CellValue, operator: str) -> Tuple[CellValue, CellValue]:
    if is_missing(left) or is_missing(right):
        raise EvaluationError(f"{operator} applied to a missing value")
    if is_numeric(left) != is_numeric(right):
        raise EvaluationError(
            f"{operator} applied to incompatible operands {left!r} and {right!r}"
        )
    return left, right


def op_eq(left: CellValue, right: CellValue) -> bool:
    """``==`` on cells (numeric comparison uses float equality with tolerance)."""
    if is_missing(left) or is_missing(right):
        return is_missing(left) and is_missing(right)
    if is_numeric(left) and is_numeric(right):
        return abs(float(left) - float(right)) <= 1e-9
    return left == right


def op_neq(left: CellValue, right: CellValue) -> bool:
    """``!=`` on cells."""
    return not op_eq(left, right)


def op_lt(left: CellValue, right: CellValue) -> bool:
    """``<`` on cells."""
    left, right = _comparable(left, right, "<")
    return left < right


def op_gt(left: CellValue, right: CellValue) -> bool:
    """``>`` on cells."""
    left, right = _comparable(left, right, ">")
    return left > right


def op_le(left: CellValue, right: CellValue) -> bool:
    """``<=`` on cells."""
    left, right = _comparable(left, right, "<=")
    return left <= right


def op_ge(left: CellValue, right: CellValue) -> bool:
    """``>=`` on cells."""
    left, right = _comparable(left, right, ">=")
    return left >= right


def _arith_operands(left: CellValue, right: CellValue, operator: str) -> Tuple[float, float]:
    if is_missing(left) or is_missing(right):
        raise EvaluationError(f"{operator} applied to a missing value")
    if not (is_numeric(left) and is_numeric(right)):
        raise EvaluationError(f"{operator} applied to non-numeric operands")
    return float(left), float(right)


def op_add(left: CellValue, right: CellValue) -> CellValue:
    """``+`` on numeric cells."""
    lvalue, rvalue = _arith_operands(left, right, "+")
    return normalize_number(lvalue + rvalue)


def op_sub(left: CellValue, right: CellValue) -> CellValue:
    """``-`` on numeric cells."""
    lvalue, rvalue = _arith_operands(left, right, "-")
    return normalize_number(lvalue - rvalue)


def op_mul(left: CellValue, right: CellValue) -> CellValue:
    """``*`` on numeric cells."""
    lvalue, rvalue = _arith_operands(left, right, "*")
    return normalize_number(lvalue * rvalue)


def op_div(left: CellValue, right: CellValue) -> CellValue:
    """``/`` on numeric cells."""
    lvalue, rvalue = _arith_operands(left, right, "/")
    if rvalue == 0:
        raise EvaluationError("division by zero")
    return normalize_number(lvalue / rvalue)


#: Boolean-valued binary operators (usable in ``filter`` predicates).
COMPARISON_OPERATORS: Dict[str, Callable[[CellValue, CellValue], bool]] = {
    "==": op_eq,
    "!=": op_neq,
    "<": op_lt,
    ">": op_gt,
    "<=": op_le,
    ">=": op_ge,
}

#: Numeric binary operators (usable in ``mutate`` expressions).
ARITHMETIC_OPERATORS: Dict[str, Callable[[CellValue, CellValue], CellValue]] = {
    "+": op_add,
    "-": op_sub,
    "*": op_mul,
    "/": op_div,
}


@dataclass(frozen=True)
class ValueComponent:
    """A named first-order component of :math:`\\Lambda_v`."""

    name: str
    kind: str  # "aggregate", "comparison" or "arithmetic"
    arity: int
    func: Callable

    def __call__(self, *args):
        return self.func(*args)


def default_value_components() -> Tuple[ValueComponent, ...]:
    """The ten first-order value transformers used in the paper's evaluation.

    Standard comparison operators plus aggregate functions such as ``mean``
    and ``sum`` (Section 9 of the paper).
    """
    components = []
    for name, func in COMPARISON_OPERATORS.items():
        components.append(ValueComponent(name, "comparison", 2, func))
    for name in ("sum", "mean", "min", "max"):
        components.append(ValueComponent(name, "aggregate", 1, AGGREGATORS[name]))
    components.append(ValueComponent("n", "aggregate", 0, AGGREGATORS["n"]))
    for name, func in ARITHMETIC_OPERATORS.items():
        components.append(ValueComponent(name, "arithmetic", 2, func))
    return tuple(components)
