"""Tests for the warm-start knowledge base (repro.engine.kb)."""

import threading
import time

import pytest

from repro.baselines import spec2_config
from repro.benchmarks import r_benchmark_suite, run_suite
from repro.benchmarks.kb_differential import run_kb_differential
from repro.core import SpecLevel
from repro.core.hypothesis import EvaluationFailure
from repro.core.library import standard_library
from repro.core.lemmas import LemmaStore, decode_descriptor, encode_descriptor
from repro.core.oe import OEStore, encode_key
from repro.dataframe import Table
from repro.dataframe.profiling import ExecutionStats, install_execution_stats
from repro.engine import TaskContext
from repro.engine.kb import (
    KnowledgeBase,
    baseline_digest,
    current_kb,
    digest_tokens,
    set_default_kb,
)

#: Fast benchmarks (each solves in well under a second, so the cold and
#: warm phases both reach their deterministic end).
FAST_NAMES = [
    "c1_prices_long_to_wide",
    "c2_orders_count_by_region",
    "c5_join_filter_large_orders",
]

TIMEOUT = 30.0


def fast_suite():
    return r_benchmark_suite().subset(names=FAST_NAMES)


def run_with(kb, suite):
    """Run *suite* serially under spec2 with *kb* installed as the default."""
    set_default_kb(kb)
    try:
        return run_suite(suite, spec2_config, timeout=TIMEOUT, label="spec2")
    finally:
        set_default_kb(None)


class TestKnowledgeBaseStore:
    def test_put_get_roundtrip_and_miss(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        assert kb.get("exec", b"missing") is None
        kb.put("exec", b"k1", b"v1")
        assert kb.get("exec", b"k1") == b"v1"
        assert len(kb) == 1
        assert kb.stats.hits == 1 and kb.stats.misses == 1 and kb.stats.stores == 1
        kb.close()

    def test_scopes_do_not_collide(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        kb.put("exec", b"k", b"execution")
        kb.put("attr", b"k", b"attributes")
        assert kb.get("exec", b"k") == b"execution"
        assert kb.get("attr", b"k") == b"attributes"
        kb.close()

    def test_update_does_not_grow_the_count(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        for _ in range(5):
            kb.put("exec", b"k", b"v")
        assert len(kb) == 1
        kb.close()

    def test_entries_survive_reopen(self, tmp_path):
        path = str(tmp_path / "kb.sqlite")
        kb = KnowledgeBase(path)
        kb.put("exec", b"k1", b"v1")
        kb.close()
        reopened = KnowledgeBase(path)
        assert len(reopened) == 1
        assert reopened.get("exec", b"k1") == b"v1"
        reopened.close()

    def test_lru_eviction_respects_last_used(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"), max_entries=3)
        for key in (b"a", b"b", b"c"):
            kb.put("exec", key, b"v")
            time.sleep(0.002)
        # Touch "a" so "b" becomes the least recently used entry.
        assert kb.get("exec", b"a") == b"v"
        time.sleep(0.002)
        kb.put("exec", b"d", b"v")
        assert len(kb) == 3
        assert kb.stats.evictions == 1
        assert kb.get("exec", b"b") is None
        assert kb.get("exec", b"a") == b"v"
        assert kb.get("exec", b"d") == b"v"
        kb.close()

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            KnowledgeBase(str(tmp_path / "kb.sqlite"), max_entries=0)

    def test_install_and_default(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        assert current_kb() is None
        set_default_kb(kb)
        try:
            assert current_kb() is kb
            assert TaskContext().kb is kb
        finally:
            set_default_kb(None)
        assert current_kb() is None
        assert TaskContext().kb is None
        kb.close()


class TestKBViewKeying:
    def test_execution_roundtrip_preserves_table(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(standard_library().version_hash())
        table = Table(["region", "total"], [("west", 10), ("east", 7)],
                      group_cols=("region",))
        view.put_execution(("select", b"fp"), table)
        restored = view.get_execution(("select", b"fp"))
        assert restored.columns == table.columns
        assert restored.rows == table.rows
        assert restored.col_types == table.col_types
        assert restored.group_cols == table.group_cols
        kb.close()

    def test_execution_roundtrip_preserves_failure(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(b"lib")
        view.put_execution(("bad", 1), EvaluationFailure("division by zero"))
        restored = view.get_execution(("bad", 1))
        assert isinstance(restored, EvaluationFailure)
        assert "division by zero" in str(restored)
        kb.close()

    def test_restore_does_not_perturb_execution_counters(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(b"lib")
        view.put_execution(("k",), Table(["a"], [(1,), (2,)]))
        stats = ExecutionStats()
        previous = install_execution_stats(stats)
        try:
            restored = view.get_execution(("k",))
        finally:
            install_execution_stats(previous)
        assert restored.rows == ((1,), (2,))
        # A cold run counts the table inside component.execute; the restore
        # replaces that execution wholesale, so it must not count.
        assert stats.tables_built == 0
        assert stats.cells_interned == 0

    def test_library_hash_isolates_facts(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        old = kb.view(b"library-v1")
        new = kb.view(b"library-v2")
        old.put_execution(("k",), Table(["a"], [(1,)]))
        assert old.get_execution(("k",)) is not None
        assert new.get_execution(("k",)) is None
        kb.close()

    def test_version_salt_isolates_facts(self, tmp_path):
        path = str(tmp_path / "kb.sqlite")
        kb = KnowledgeBase(path)
        kb.view(b"lib").put_execution(("k",), Table(["a"], [(1,)]))
        kb.close()
        bumped = KnowledgeBase(path, version_salt=b"v2")
        assert bumped.view(b"lib").get_execution(("k",)) is None
        bumped.close()

    def test_corrupt_blob_behaves_like_a_miss(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(b"lib")
        view.put_execution(("k",), Table(["a"], [(1,)]))
        kb.put("exec", view._digest("k"), b"not json")
        assert view.get_execution(("k",)) is None
        kb.close()

    def test_attribute_vector_roundtrip(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(b"lib")
        base = digest_tokens("baseline")
        assert view.get_attributes(b"fp", SpecLevel.SPEC2, base) is None
        view.put_attributes(b"fp", SpecLevel.SPEC2, base, (3, 2, 0, 1, 4))
        assert view.get_attributes(b"fp", SpecLevel.SPEC2, base) == (3, 2, 0, 1, 4)
        # The spec level is part of the key (SPEC1 vectors are coarser).
        assert view.get_attributes(b"fp", SpecLevel.SPEC1, base) is None
        kb.close()

    def test_baseline_digest_is_order_independent(self):
        a = Table(["x"], [(1,)])
        b = Table(["y"], [("p",)])
        assert baseline_digest([a, b]) == baseline_digest([b, a])

    def test_task_key_depends_on_tables_and_level(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(b"lib")
        inp, out = Table(["x"], [(1,)]), Table(["y"], [(2,)])
        key = view.task_key([inp], out, SpecLevel.SPEC2)
        assert key == view.task_key([inp], out, SpecLevel.SPEC2)
        assert key != view.task_key([inp], out, SpecLevel.SPEC1)
        assert key != view.task_key([out], inp, SpecLevel.SPEC2)
        kb.close()

    def test_lemma_entries_merge_across_puts(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        view = kb.view(b"lib")
        key = b"task"
        first = [[["spec", [0], "select"]]]
        second = [[["spec", [0], "select"]], [["bind", [1], 0]]]
        view.put_lemmas(key, first)
        view.put_lemmas(key, second)
        merged = view.get_lemmas(key)
        assert len(merged) == 2
        kb.close()


class TestColdVsWarmDifferential:
    def test_warm_run_matches_cold_run(self, tmp_path):
        comparison = run_kb_differential(
            fast_suite(), timeout=TIMEOUT, kb_path=str(tmp_path / "kb.sqlite")
        )
        assert comparison["programs_identical"]
        assert comparison["counters_identical"]
        assert comparison["counters_compared"] == len(FAST_NAMES)
        assert comparison["solved_cold"] == comparison["solved_warm"]
        assert comparison["warm_kb"]["hits"] > 0
        assert comparison["cold_kb"]["hits"] < comparison["warm_kb"]["hits"]

    def test_version_bump_invalidates_but_stays_correct(self, tmp_path):
        path = str(tmp_path / "kb.sqlite")
        suite = fast_suite()
        cold_kb = KnowledgeBase(path)
        cold = run_with(cold_kb, suite)
        cold_entries = len(cold_kb)
        cold_kb.close()
        assert cold_entries > 0
        # A simulated library/version bump: same file, different salt.
        bumped_kb = KnowledgeBase(path, version_salt=b"library-bump")
        bumped = run_with(bumped_kb, suite)
        bumped_stats = bumped_kb.stats
        bumped_kb.close()
        # Every stale fact is ignored (missed), never replayed; the run is
        # a correct cold start that re-derives everything under new keys.
        assert bumped_stats.hits == 0
        assert bumped_stats.misses > 0
        assert [
            (o.benchmark, o.solved, o.program) for o in bumped.outcomes
        ] == [(o.benchmark, o.solved, o.program) for o in cold.outcomes]


class TestConcurrentAccess:
    def test_two_task_contexts_share_one_kb(self, tmp_path):
        kb = KnowledgeBase(str(tmp_path / "kb.sqlite"))
        contexts = [TaskContext(kb=kb), TaskContext(kb=kb)]
        assert all(context.kb is kb for context in contexts)
        library_hash = standard_library().version_hash()
        shared = Table(["s"], [(1,)])
        errors = []

        def worker(context, offset):
            try:
                view = context.kb.view(library_hash)
                for i in range(100):
                    key = ("component", offset * 1000 + i)
                    view.put_execution(key, Table(["a"], [(i,)]))
                    restored = view.get_execution(key)
                    assert restored.rows == ((i,),)
                    # A key both threads fight over: any successful read
                    # must return the one value both of them write.
                    view.put_execution(("shared",), shared)
                    racy = view.get_execution(("shared",))
                    assert racy is None or racy.rows == ((1,),)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(context, index))
            for index, context in enumerate(contexts)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(kb) == 201  # 100 per worker + the shared key
        kb.close()


class TestLemmaAndOETransport:
    def test_descriptor_codec_roundtrip(self):
        descriptors = [
            ("eval", (0, 1), (3, 2, 0, 1, 4)),
            ("spec", (0,), "select"),
            ("bind", (1,), None),
            ("bind", (2,), 1),
        ]
        for descriptor in descriptors:
            assert decode_descriptor(encode_descriptor(descriptor)) == descriptor
        with pytest.raises(ValueError):
            decode_descriptor(["mystery", [0], 1])

    def test_lemma_store_export_import(self):
        store = LemmaStore()
        store.add([("spec", (0,), "select"), ("bind", (1,), 0)])
        store.add([("eval", (0,), (1, 2, 3, 4, 5))])
        entries = store.export_entries()
        assert entries == store.export_entries()  # deterministic
        restored = LemmaStore()
        assert restored.import_entries(entries) == 2
        assert sorted(map(repr, restored.lemmas())) == sorted(map(repr, store.lemmas()))
        # Malformed entries degrade to a cold start, never an error.
        assert restored.import_entries([[["mystery", [0], 1]], "junk"]) == 0

    def test_oe_export_never_feeds_admit(self):
        exporter = OEStore()
        key = (("fp", b"x"),)
        assert exporter.admit(key) is True
        digests = exporter.export_entries()
        assert digests == [encode_key(key)]
        importer = OEStore()
        assert importer.import_entries(digests) == 1
        assert importer.imported_digests == set(digests)
        # Imported digests are transport/observability only: a fresh search
        # must still explore the state (the old run's solutions are not in
        # this run's frontier, so merging against them would be unsound).
        assert importer.admit(key) is True
