"""Tests for the baseline synthesizers and configuration presets."""

from repro.baselines import (
    ALL_FIGURE17_CONFIGS,
    FIGURE16_CONFIGS,
    Lambda2Synthesizer,
    SqlSynthesizer,
    no_deduction_config,
    spec1_config,
    spec2_config,
    spec2_no_partial_eval_config,
)
from repro.core.abstraction import SpecLevel
from repro.dataframe import Table

EMPLOYEES = Table(
    ["emp", "dept", "salary"],
    [["kim", "eng", 120], ["lee", "eng", 100], ["pat", "sales", 90]],
)
DEPARTMENTS = Table(["dept", "floor"], [["eng", 3], ["sales", 1]])


class TestConfigurations:
    def test_presets_have_expected_settings(self):
        assert no_deduction_config().deduction is False
        assert spec1_config().spec_level is SpecLevel.SPEC1
        assert spec2_config().spec_level is SpecLevel.SPEC2
        assert spec2_no_partial_eval_config().partial_evaluation is False

    def test_figure16_has_three_columns(self):
        assert set(FIGURE16_CONFIGS) == {"no-deduction", "spec1", "spec2"}

    def test_figure17_has_five_curves(self):
        assert set(ALL_FIGURE17_CONFIGS) == {
            "no-deduction", "spec1-no-pe", "spec2-no-pe", "spec1-pe", "spec2-pe",
        }

    def test_timeout_is_passed_through(self):
        assert spec2_config(timeout=5.0).timeout == 5.0


class TestSqlSynthesizer:
    def test_projection_query(self):
        output = Table(["emp", "salary"], [["kim", 120], ["lee", 100], ["pat", 90]])
        result = SqlSynthesizer(timeout=10).synthesize([EMPLOYEES], output)
        assert result.solved
        assert "SELECT" in result.query.render_sql()

    def test_selection_query(self):
        output = Table(["emp", "dept", "salary"], [["kim", "eng", 120], ["lee", "eng", 100]])
        result = SqlSynthesizer(timeout=10).synthesize([EMPLOYEES], output)
        assert result.solved
        assert "WHERE" in result.query.render_sql()

    def test_aggregation_query(self):
        output = Table(["dept", "n"], [["eng", 2], ["sales", 1]])
        result = SqlSynthesizer(timeout=10).synthesize([EMPLOYEES], output)
        assert result.solved
        assert "GROUP BY" in result.query.render_sql()

    def test_join_query(self):
        output = Table(
            ["emp", "dept", "salary", "floor"],
            [["kim", "eng", 120, 3], ["lee", "eng", 100, 3], ["pat", "sales", 90, 1]],
        )
        result = SqlSynthesizer(timeout=10).synthesize([EMPLOYEES, DEPARTMENTS], output)
        assert result.solved
        assert "JOIN" in result.query.render_sql()

    def test_reshaping_is_out_of_scope(self):
        # A gather-style output cannot be expressed as a flat SQL query.
        from repro.components import gather

        wide = Table(["id", "a", "b"], [[1, 10, 20], [2, 30, 40]])
        output = gather(wide, "k", "v", ["a", "b"])
        result = SqlSynthesizer(timeout=5).synthesize([wide], output)
        assert not result.solved

    def test_query_execution_matches_sql_semantics(self):
        from repro.baselines.sql_synthesizer import SqlQuery

        query = SqlQuery(tables=(0,), projection=(), where=("dept", "==", "eng"),
                         group_by=("dept",), aggregate=("sum", "salary"))
        result = query.execute([EMPLOYEES])
        assert result.rows == (("eng", 220),)


class TestLambda2:
    def test_projection_is_solvable(self):
        output = Table(["emp", "salary"], [["kim", 120], ["lee", 100], ["pat", 90]])
        result = Lambda2Synthesizer(timeout=10).synthesize([EMPLOYEES], output)
        assert result.solved
        assert "map" in result.render()

    def test_selection_is_solvable(self):
        output = Table(["emp", "dept", "salary"], [["kim", "eng", 120], ["lee", "eng", 100]])
        result = Lambda2Synthesizer(timeout=10).synthesize([EMPLOYEES], output)
        assert result.solved
        assert "filter" in result.render()

    def test_aggregation_is_not_solvable(self):
        output = Table(["dept", "n"], [["eng", 2], ["sales", 1]])
        result = Lambda2Synthesizer(timeout=5).synthesize([EMPLOYEES], output)
        assert not result.solved

    def test_reshaping_is_not_solvable(self):
        from repro.components import spread

        long = Table(["product", "store", "price"],
                     [["pen", "north", 2], ["pen", "south", 3],
                      ["pad", "north", 5], ["pad", "south", 4]])
        output = spread(long, "store", "price")
        result = Lambda2Synthesizer(timeout=5).synthesize([long], output)
        assert not result.solved

    def test_unsolved_render(self):
        output = Table(["dept", "n"], [["eng", 2], ["sales", 1]])
        result = Lambda2Synthesizer(timeout=2).synthesize([EMPLOYEES], output)
        assert result.render() == "<no program found>"
