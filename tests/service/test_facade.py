"""Tests for the sanctioned facade: repro.api."""

import json
import sys
import warnings

import pytest

from repro import Table
from repro.api import (
    CandidateProgram,
    ExamplePayload,
    RequestError,
    SessionState,
    SynthesisRequest,
    SynthesisResult,
    config_from_json,
    config_to_json,
    create_session,
    solve,
    table_from_json,
    table_to_json,
)
from repro.core import Morpheus, SynthesisConfig, synthesize

STUDENTS = Table(["name", "age", "gpa"],
                 [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
ADULTS = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])

EMPLOYEES = Table(
    ["name", "dept", "salary"],
    [["ann", "eng", 100], ["bob", "eng", 90], ["cal", "ops", 80]],
)
HEADCOUNT = Table(["dept", "n"], [["eng", 2], ["ops", 1]])


def filter_request(**knobs):
    knobs.setdefault("timeout", 20)
    return SynthesisRequest.from_tables([STUDENTS], ADULTS, **knobs)


class TestTableJson:
    def test_round_trip_preserves_content_and_types(self):
        payload = json.loads(json.dumps(table_to_json(STUDENTS)))
        restored = table_from_json(payload)
        assert restored.columns == STUDENTS.columns
        assert restored.rows == STUDENTS.rows
        assert restored.col_types == STUDENTS.col_types

    def test_col_types_are_optional(self):
        restored = table_from_json({"columns": ["a"], "rows": [[1], [2]]})
        assert restored.rows == ((1,), (2,))

    def test_malformed_payloads_raise_request_error(self):
        with pytest.raises(RequestError):
            table_from_json("not a table")
        with pytest.raises(RequestError, match="rows"):
            table_from_json({"columns": ["a"]})
        with pytest.raises(RequestError, match="column type"):
            table_from_json(
                {"columns": ["a"], "rows": [[1]], "col_types": ["bogus"]}
            )


class TestRequestJson:
    def test_round_trip(self):
        request = filter_request(top_k=2)
        restored = SynthesisRequest.from_json(json.loads(json.dumps(request.to_json())))
        assert restored == request

    def test_config_round_trip_covers_every_knob(self):
        config = SynthesisConfig(timeout=5.0, top_k=3, oe=False)
        assert config_from_json(config_to_json(config)) == config

    def test_unknown_config_knob_raises(self):
        with pytest.raises(RequestError, match="unknown config knobs"):
            config_from_json({"warp_drive": True})

    def test_unknown_library_raises(self):
        with pytest.raises(RequestError, match="library"):
            SynthesisRequest.from_json(
                {"examples": [ExamplePayload.make([STUDENTS], ADULTS).to_json()],
                 "library": "pandas"}
            )

    def test_empty_examples_raise(self):
        with pytest.raises(RequestError, match="examples"):
            SynthesisRequest.from_json({"examples": []})


class TestOneShotSolve:
    def test_matches_the_legacy_synthesize_entry_point(self):
        legacy = synthesize([STUDENTS], ADULTS, config=SynthesisConfig(timeout=20))
        result = solve(filter_request())
        assert result.solved
        assert result.status == "done"
        assert result.program == legacy.render()

    def test_result_json_round_trip(self):
        result = solve(filter_request())
        restored = SynthesisResult.from_json(json.loads(json.dumps(result.to_json())))
        assert restored.program == result.program
        assert restored.counters == result.counters

    def test_counters_are_populated(self):
        result = solve(filter_request())
        assert result.counters["steps"] > 0
        assert result.counters["hypotheses_expanded"] > 0
        assert result.counters["tables_built"] > 0


class TestSessionLifecycle:
    def test_advance_streams_candidates_anytime(self):
        session = create_session(filter_request(top_k=2))
        assert session.status == "created"
        seen = []
        while not session.finished:
            session.advance(max_steps=16)
            for candidate in session.candidates[len(seen):]:
                seen.append(candidate)
        assert session.status in ("done", "exhausted", "timeout")
        assert seen
        assert [c.rank for c in seen] == list(range(1, len(seen) + 1))

    def test_solve_equals_sliced_advance(self):
        sliced = create_session(filter_request())
        while not sliced.finished:
            sliced.advance(max_steps=8)
        solved = create_session(filter_request()).solve()
        assert sliced.candidates[0].program == solved.render()

    def test_state_json_round_trip(self):
        session = create_session(filter_request())
        session.advance(max_steps=64)
        state = session.state()
        restored = SessionState.from_json(json.loads(json.dumps(state.to_json())))
        assert restored == state


class TestAddExample:
    DISTINGUISHER = ExamplePayload.make(
        [Table(["name", "age", "gpa"], [["Zoe", 8, 3.5], ["Max", 20, 2.0]])],
        Table(["name", "age", "gpa"], [["Max", 20, 2.0]]),
    )

    def run_to_first_candidate(self):
        session = create_session(filter_request())
        while not session.finished and not session.candidates:
            session.advance(max_steps=32)
        return session

    def test_counters_continue_across_the_resume(self):
        session = self.run_to_first_candidate()
        before = session.counters()
        session.add_example(self.DISTINGUISHER)
        assert session.resumes == 1
        after_resume = session.counters()
        assert after_resume["steps"] == before["steps"]  # resume loses nothing
        while not session.finished:
            session.advance(max_steps=64)
        after = session.counters()
        assert after["steps"] > before["steps"]
        assert after["partial_programs"] >= before["partial_programs"]
        assert after["frontier_peak"] >= before["frontier_peak"]

    def test_revalidation_marks_overfit_candidates(self):
        session = self.run_to_first_candidate()
        assert session.candidates[0].validated
        session.add_example(self.DISTINGUISHER)
        assert not session.candidates[0].validated

    def test_resumed_program_matches_cold_two_example_run(self):
        session = self.run_to_first_candidate()
        session.add_example(self.DISTINGUISHER)
        while not session.finished and not session.validated_count:
            session.advance(max_steps=64)
        resumed = [c.program for c in session.candidates if c.validated]
        assert resumed

        cold = create_session(
            SynthesisRequest(
                (ExamplePayload.make([STUDENTS], ADULTS), self.DISTINGUISHER),
                config=SynthesisConfig(timeout=20),
            )
        )
        while not cold.finished and not cold.validated_count:
            cold.advance(max_steps=64)
        cold_programs = [c.program for c in cold.candidates if c.validated]
        assert resumed[0] == cold_programs[0]

    def test_consistent_extra_example_keeps_candidates_valid(self):
        session = self.run_to_first_candidate()
        # An example the current candidate already satisfies: nothing is
        # invalidated and the met quota ends the session.
        session.add_example(
            ExamplePayload.make(
                [Table(["name", "age", "gpa"], [["Alice", 8, 4.0], ["Max", 20, 2.0]])],
                Table(["name", "age", "gpa"], [["Max", 20, 2.0]]),
            )
        )
        assert session.candidates[0].validated
        assert session.status == "done"


class TestDeprecation:
    def test_direct_morpheus_construction_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Morpheus()
            warned_at = sys._getframe().f_lineno - 1
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "repro.api.create_session" in str(w.message)
        ]
        assert deprecations
        # The warning must point at the caller's own line, not somewhere
        # inside core/synthesizer.py -- that is what makes it actionable.
        assert deprecations[0].filename == __file__
        assert deprecations[0].lineno == warned_at

    def test_sanctioned_paths_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve(SynthesisRequest.from_tables([EMPLOYEES], HEADCOUNT, timeout=20))
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
