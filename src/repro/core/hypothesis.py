"""Hypotheses as refinement trees (Section 4 of the paper).

A hypothesis is a partial program: a tree whose internal nodes are
applications of table transformers and whose leaves are holes.  A *table*
hole may carry a qualifier binding it to one of the example's input tables; a
*first-order* hole may carry a qualifier holding the concrete
:class:`~repro.core.arguments.ValueArgument` that fills it.

* A hypothesis with no table holes left unbound is a **sketch**
  (Definition 6).
* A hypothesis whose every hole carries a qualifier is a **complete program**
  (Definition 7).

Hypotheses are immutable; refinement and hole filling return new trees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..components.errors import PRUNABLE_ERRORS
from ..dataframe.profiling import execution_stats
from ..dataframe.table import Table
from .arguments import ValueArgument
from .component import Component
from .types import Type


@dataclass(frozen=True)
class Hole:
    """An unknown expression ``?i : tau``, optionally with a qualifier."""

    node_id: int
    hole_type: Type
    #: For TABLE holes: the index of the input table this hole is bound to.
    binding: Optional[int] = None
    #: For first-order holes: the concrete argument value filling the hole.
    value: Optional[ValueArgument] = None

    @property
    def is_bound(self) -> bool:
        """True when the hole carries a qualifier."""
        if self.hole_type is Type.TABLE:
            return self.binding is not None
        return self.value is not None

    def __repr__(self) -> str:
        if self.hole_type is Type.TABLE and self.binding is not None:
            return f"?{self.node_id}@x{self.binding + 1}"
        if self.value is not None:
            return f"?{self.node_id}@{self.value.render_r()}"
        return f"?{self.node_id}:{self.hole_type.value}"


@dataclass(frozen=True)
class Apply:
    """An application node ``?X_i(H_1, ..., H_n)``.

    ``table_children`` are sub-hypotheses (holes or nested applications) for
    the component's table arguments; ``value_children`` are the first-order
    holes for its remaining parameters.
    """

    node_id: int
    component: Component
    table_children: Tuple["Hypothesis", ...]
    value_children: Tuple[Hole, ...]

    def __repr__(self) -> str:
        children = list(self.table_children) + list(self.value_children)
        rendered = ", ".join(repr(child) for child in children)
        return f"?{self.component.name}_{self.node_id}({rendered})"


Hypothesis = Union[Hole, Apply]


def initial_hypothesis() -> Hole:
    """The most general hypothesis ``?0 : tbl``."""
    return Hole(0, Type.TABLE)


# ----------------------------------------------------------------------
# Tree traversal helpers
# ----------------------------------------------------------------------
def iter_nodes(hypothesis: Hypothesis) -> Iterable[Hypothesis]:
    """Pre-order traversal of every node in the tree."""
    yield hypothesis
    if isinstance(hypothesis, Apply):
        for child in hypothesis.table_children:
            yield from iter_nodes(child)
        for child in hypothesis.value_children:
            yield child


def table_holes(hypothesis: Hypothesis, unbound_only: bool = True) -> List[Hole]:
    """All TABLE holes (optionally only the unbound ones)."""
    holes = []
    for node in iter_nodes(hypothesis):
        if isinstance(node, Hole) and node.hole_type is Type.TABLE:
            if not unbound_only or not node.is_bound:
                holes.append(node)
    return holes


def unfilled_value_holes(hypothesis: Hypothesis) -> List[Hole]:
    """All first-order holes that do not yet carry a value."""
    holes = []
    for node in iter_nodes(hypothesis):
        if isinstance(node, Hole) and node.hole_type is not Type.TABLE and not node.is_bound:
            holes.append(node)
    return holes


def is_sketch(hypothesis: Hypothesis) -> bool:
    """Definition 6: every table leaf is bound to an input variable."""
    return not table_holes(hypothesis, unbound_only=True)


def is_complete(hypothesis: Hypothesis) -> bool:
    """Definition 7: every hole carries a qualifier."""
    for node in iter_nodes(hypothesis):
        if isinstance(node, Hole) and not node.is_bound:
            return False
    return True


def hypothesis_size(hypothesis: Hypothesis) -> int:
    """The number of component applications in the hypothesis."""
    return sum(1 for node in iter_nodes(hypothesis) if isinstance(node, Apply))


def component_sequence(hypothesis: Hypothesis) -> Tuple[str, ...]:
    """Post-order sequence of component names (used by the n-gram cost model)."""
    sequence: List[str] = []

    def walk(node: Hypothesis) -> None:
        if isinstance(node, Apply):
            for child in node.table_children:
                walk(child)
            sequence.append(node.component.name)

    walk(hypothesis)
    return tuple(sequence)


def max_node_id(hypothesis: Hypothesis) -> int:
    """The largest node id used in the tree."""
    return max(node.node_id for node in iter_nodes(hypothesis))


# ----------------------------------------------------------------------
# Tree rewriting
# ----------------------------------------------------------------------
def replace_node(hypothesis: Hypothesis, node_id: int, new_node: Hypothesis) -> Hypothesis:
    """Return a copy of the tree with the node *node_id* replaced."""
    if hypothesis.node_id == node_id:
        return new_node
    if isinstance(hypothesis, Hole):
        return hypothesis
    table_children = tuple(
        replace_node(child, node_id, new_node) for child in hypothesis.table_children
    )
    value_children = tuple(
        new_node if child.node_id == node_id and isinstance(new_node, Hole) else child
        for child in hypothesis.value_children
    )
    return Apply(hypothesis.node_id, hypothesis.component, table_children, value_children)


def refine(
    hypothesis: Hypothesis,
    hole: Hole,
    component: Component,
    next_id: Callable[[], int],
) -> Hypothesis:
    """Definition 5: replace a table hole by an application of *component*.

    The component's table arguments become fresh table holes and its
    first-order parameters become fresh unfilled value holes.
    """
    table_children = tuple(Hole(next_id(), Type.TABLE) for _ in range(component.table_arity))
    value_children = tuple(
        Hole(next_id(), param.param_type) for param in component.value_params
    )
    application = Apply(hole.node_id, component, table_children, value_children)
    return replace_node(hypothesis, hole.node_id, application)


def bind_table_hole(hypothesis: Hypothesis, hole: Hole, input_index: int) -> Hypothesis:
    """Attach the qualifier ``(x_j, T_j)`` to a table hole."""
    return replace_node(hypothesis, hole.node_id, replace(hole, binding=input_index))


def fill_value_hole(hypothesis: Hypothesis, hole: Hole, value: ValueArgument) -> Hypothesis:
    """Attach a concrete first-order argument to a value hole."""
    return replace_node(hypothesis, hole.node_id, replace(hole, value=value))


def sketches(hypothesis: Hypothesis, num_inputs: int) -> Iterable[Hypothesis]:
    """Figure 11: all ways of binding the unbound table holes to input variables."""
    holes = table_holes(hypothesis, unbound_only=True)
    if not holes:
        yield hypothesis
        return
    for assignment in itertools.product(range(num_inputs), repeat=len(holes)):
        candidate = hypothesis
        for hole, input_index in zip(holes, assignment):
            candidate = bind_table_hole(candidate, hole, input_index)
        yield candidate


# ----------------------------------------------------------------------
# Partial evaluation (Figure 7)
# ----------------------------------------------------------------------
class EvaluationFailure(Exception):
    """A complete subterm of the hypothesis cannot be evaluated.

    Raised when a component application fails on its concrete arguments
    (e.g. ``spread`` over duplicate identifiers); the enclosing hypothesis can
    never satisfy the example and is pruned.
    """


def partial_evaluate(
    hypothesis: Hypothesis,
    inputs: Sequence[Table],
    memo: Optional[Dict[Hypothesis, object]] = None,
    exec_cache=None,
) -> Dict[int, Table]:
    """Evaluate every *complete* subterm of the hypothesis.

    Returns a mapping from node id to the concrete table the subterm
    evaluates to.  Nodes whose subtree still contains unbound holes are
    simply absent from the mapping (they are "partial" in the sense of
    Figure 7).  Raises :class:`EvaluationFailure` if evaluation of a complete
    subterm fails.

    ``memo`` is an optional cross-call cache keyed by (structurally equal)
    subtrees; during sketch completion the same lower subtrees are evaluated
    for every candidate filling of the upper holes, so memoisation avoids the
    repeated work.  The cache must only be shared between calls that use the
    same ``inputs``.

    ``exec_cache`` is an optional
    :class:`~repro.engine.cache.ExecutionCache` keyed by the *fingerprints*
    of the argument tables rather than by sub-hypothesis structure, so two
    different sub-programs that happen to produce identical intermediate
    tables share the concrete work (and the result object) above them.
    """
    results: Dict[int, Table] = {}

    def walk(node: Hypothesis) -> Optional[Table]:
        if node.node_id in results:
            return results[node.node_id]
        if isinstance(node, Hole):
            if node.hole_type is Type.TABLE and node.binding is not None:
                table = inputs[node.binding]
                results[node.node_id] = table
                return table
            return None
        if memo is not None and node in memo:
            cached = memo[node]
            if isinstance(cached, EvaluationFailure):
                raise cached
            results[node.node_id] = cached
            return cached
        child_tables = [walk(child) for child in node.table_children]
        if any(table is None for table in child_tables):
            return None
        arguments = []
        for hole in node.value_children:
            if hole.value is None:
                return None
            arguments.append(hole.value)
        exec_key = None
        if exec_cache is not None:
            exec_key = (
                node.component.name,
                node.node_id,
                tuple(table.fingerprint() for table in child_tables),
                tuple(arguments),
            )
            cached = exec_cache.get(exec_key)
            if cached is not None:
                if memo is not None:
                    memo[node] = cached
                if isinstance(cached, EvaluationFailure):
                    raise cached
                results[node.node_id] = cached
                return cached
        started = perf_counter()
        try:
            table = node.component.execute(child_tables, arguments, f"_n{node.node_id}_")
        except PRUNABLE_ERRORS as error:
            execution_stats().charge_execution(
                node.component.name, perf_counter() - started
            )
            failure = EvaluationFailure(str(error))
            if memo is not None:
                memo[node] = failure
            if exec_key is not None:
                exec_cache.put(exec_key, failure)
            raise failure from error
        execution_stats().charge_execution(
            node.component.name, perf_counter() - started
        )
        if memo is not None:
            memo[node] = table
        if exec_key is not None:
            exec_cache.put(exec_key, table)
        results[node.node_id] = table
        return table

    walk(hypothesis)
    return results


def evaluate(
    hypothesis: Hypothesis,
    inputs: Sequence[Table],
    memo: Optional[Dict[Hypothesis, object]] = None,
    exec_cache=None,
) -> Table:
    """Evaluate a complete hypothesis to its output table."""
    if not is_complete(hypothesis):
        raise ValueError("cannot fully evaluate a hypothesis that still has holes")
    results = partial_evaluate(hypothesis, inputs, memo=memo, exec_cache=exec_cache)
    return results[hypothesis.node_id]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_program(hypothesis: Hypothesis, input_names: Optional[Sequence[str]] = None) -> str:
    """Render a (complete) hypothesis as a sequence of R assignments.

    The output mirrors the paper's presentation::

        df1 = gather(table1, key, value, X1, X2, X3)
        df2 = inner_join(df1, table2)
    """
    lines: List[str] = []
    counter = itertools.count(1)

    def name_of_input(index: int) -> str:
        if input_names is not None and index < len(input_names):
            return input_names[index]
        return f"table{index + 1}"

    def walk(node: Hypothesis) -> str:
        if isinstance(node, Hole):
            if node.hole_type is Type.TABLE:
                return name_of_input(node.binding) if node.binding is not None else f"?{node.node_id}"
            return node.value.render_r() if node.value is not None else f"?{node.node_id}"
        table_args = [walk(child) for child in node.table_children]
        arguments = [child.value for child in node.value_children]
        if any(argument is None for argument in arguments):
            rendered_arguments = ", ".join(
                child.value.render_r() if child.value is not None else f"?{child.node_id}"
                for child in node.value_children
            )
            call = f"{node.component.name}({', '.join(table_args)}, {rendered_arguments})"
        else:
            call = node.component.render_r(table_args, arguments)
        result_name = f"df{next(counter)}"
        lines.append(f"{result_name} = {call}")
        return result_name

    walk(hypothesis)
    return "\n".join(lines)
