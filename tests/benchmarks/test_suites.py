"""Tests for the benchmark suites and the runner/reporting infrastructure."""

import pytest

from repro.benchmarks import (
    CATEGORY_COUNTS,
    CATEGORY_DESCRIPTIONS,
    figure16_table,
    figure17_series,
    figure17_table,
    figure18_table,
    r_benchmark_suite,
    run_figure16,
    run_suite,
    sql_benchmark_suite,
)
from repro.benchmarks.runner import Figure18Row, run_benchmark
from repro.benchmarks.suite import BenchmarkSuite
from repro.baselines import spec2_config
from repro.core import SynthesisConfig
from repro.dataframe import Table


class TestRSuite:
    def test_has_eighty_benchmarks(self):
        assert len(r_benchmark_suite()) == 80

    def test_category_counts_match_figure16(self):
        suite = r_benchmark_suite()
        by_category = suite.by_category()
        for category, count in CATEGORY_COUNTS.items():
            assert len(by_category[category]) == count, category

    def test_every_category_is_described(self):
        assert set(CATEGORY_DESCRIPTIONS) == set(CATEGORY_COUNTS)

    def test_names_are_unique(self):
        names = r_benchmark_suite().names()
        assert len(names) == len(set(names))

    def test_outputs_differ_from_inputs(self):
        # A benchmark whose output equals its input would be trivial.
        for benchmark in r_benchmark_suite():
            assert all(benchmark.output != table for table in benchmark.inputs), benchmark.name

    def test_reference_components_are_recorded(self):
        for benchmark in r_benchmark_suite():
            assert benchmark.size >= 1

    def test_subset_by_category(self):
        subset = r_benchmark_suite().subset(categories=["C1"])
        assert len(subset) == CATEGORY_COUNTS["C1"]

    def test_lookup_by_name(self):
        suite = r_benchmark_suite()
        benchmark = suite.get("c2_flights_to_seattle_share")
        assert benchmark.category == "C2"
        with pytest.raises(KeyError):
            suite.get("does_not_exist")


class TestSqlSuite:
    def test_has_twenty_eight_benchmarks(self):
        assert len(sql_benchmark_suite()) == 28

    def test_all_single_or_two_table(self):
        for benchmark in sql_benchmark_suite():
            assert 1 <= len(benchmark.inputs) <= 2


class TestSuiteInfrastructure:
    def test_add_computes_output(self):
        suite = BenchmarkSuite("tiny")
        table = Table(["a", "b"], [[1, 2], [3, 4]])
        benchmark = suite.add(
            "t1", "C1", "projection", [table],
            lambda tables: tables[0].select_columns(["a"]), ["select"],
        )
        assert benchmark.output.columns == ("a",)
        assert len(suite) == 1

    def test_run_benchmark_on_easy_task(self):
        suite = r_benchmark_suite()
        benchmark = suite.get("c1_prices_long_to_wide")
        outcome = run_benchmark(benchmark, SynthesisConfig(timeout=15))
        assert outcome.solved
        assert outcome.category == "C1"
        assert outcome.elapsed < 15

    def test_run_suite_aggregates(self):
        suite = r_benchmark_suite().subset(names=["c1_scores_wide_to_long", "c3_sales_gather"])
        run = run_suite(suite, spec2_config, timeout=15)
        assert run.total == 2
        assert run.solved >= 1
        assert run.median_time() is not None
        assert len(run.cumulative_times()) == 2


class TestReporting:
    @pytest.fixture(scope="class")
    def figure16_runs(self):
        suite = r_benchmark_suite().subset(
            names=["c1_prices_long_to_wide", "c2_orders_count_by_region"]
        )
        return run_figure16(timeout=15, suite=suite)

    def test_figure16_table_structure(self, figure16_runs):
        text = figure16_table(figure16_runs)
        assert "Category" in text
        assert "Total" in text
        assert "spec2" in text

    def test_figure17_series_monotone(self, figure16_runs):
        series = figure17_series(figure16_runs)
        for values in series.values():
            assert values == sorted(values)

    def test_figure17_table(self, figure16_runs):
        assert "Configuration" in figure17_table(figure16_runs)

    def test_figure18_table_rendering(self):
        rows = [
            Figure18Row("morpheus", "sql-benchmarks", 27, 28, 1.0),
            Figure18Row("sqlsynthesizer", "sql-benchmarks", 20, 28, 11.0),
        ]
        text = figure18_table(rows)
        assert "morpheus" in text
        assert "96.4%" in text
