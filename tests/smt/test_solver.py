"""Tests for the DPLL(T) solver facade."""

from hypothesis import given
from hypothesis import strategies as st

from repro.smt import And, CheckResult, Int, Not, Or, Solver, is_satisfiable
from repro.smt.cnf import tseitin
from repro.smt.terms import TRUE, FALSE


class TestConjunctiveFastPath:
    def test_simple_sat(self):
        x = Int("x")
        solver = Solver()
        solver.add(x >= 1, x <= 3)
        assert solver.check() is CheckResult.SAT
        assert 1 <= solver.model()["x"] <= 3

    def test_simple_unsat(self):
        x = Int("x")
        solver = Solver()
        solver.add(x >= 4, x <= 3)
        assert solver.check() is CheckResult.UNSAT
        assert solver.model() is None

    def test_boolean_constants(self):
        solver = Solver()
        solver.add(TRUE)
        assert solver.check() is CheckResult.SAT
        solver.add(FALSE)
        assert solver.check() is CheckResult.UNSAT

    def test_reset(self):
        x = Int("x")
        solver = Solver()
        solver.add(x.equals(1), x.equals(2))
        assert solver.check() is CheckResult.UNSAT
        solver.reset()
        solver.add(x.equals(1))
        assert solver.check() is CheckResult.SAT


class TestDisjunctions:
    def test_case_split(self):
        x, y = Int("x"), Int("y")
        solver = Solver()
        solver.add(Or(x.equals(1), x.equals(5)), x > 3, y.equals(x + 2))
        assert solver.check() is CheckResult.SAT
        assert solver.model()["x"] == 5
        assert solver.model()["y"] == 7

    def test_unsat_across_branches(self):
        x = Int("x")
        solver = Solver()
        solver.add(Or(x.equals(1), x.equals(5)), x > 6)
        assert solver.check() is CheckResult.UNSAT

    def test_min_max_encoding(self):
        # Min(a, b) <= out <= Max(a, b) with a=3, b=7 admits out=5.
        a, b, out = Int("a"), Int("b"), Int("out")
        solver = Solver()
        solver.add(
            a.equals(3), b.equals(7), out.equals(5),
            Or(a <= out, b <= out), Or(out <= a, out <= b),
        )
        assert solver.check() is CheckResult.SAT

    def test_min_max_violation(self):
        a, b, out = Int("a"), Int("b"), Int("out")
        solver = Solver()
        solver.add(
            a.equals(3), b.equals(7), out.equals(9),
            Or(a <= out, b <= out), Or(out <= a, out <= b),
        )
        assert solver.check() is CheckResult.UNSAT


class TestNegationsAndNesting:
    def test_negated_equality(self):
        x = Int("x")
        solver = Solver()
        solver.add(Not(x.equals(3)), x >= 3, x <= 3)
        assert solver.check() is CheckResult.UNSAT

    def test_negated_equality_sat(self):
        x = Int("x")
        solver = Solver()
        solver.add(Not(x.equals(3)), x >= 3, x <= 4)
        assert solver.check() is CheckResult.SAT
        assert solver.model()["x"] == 4

    def test_negated_inequality(self):
        x = Int("x")
        solver = Solver()
        solver.add(Not(x <= 3), x <= 4)
        assert solver.check() is CheckResult.SAT
        assert solver.model()["x"] == 4

    def test_nested_and_inside_or(self):
        x, y = Int("x"), Int("y")
        formula = Or(And(x.equals(1), y.equals(2)), And(x.equals(5), y.equals(6)))
        solver = Solver()
        solver.add(formula, x >= 2)
        assert solver.check() is CheckResult.SAT
        assert (solver.model()["x"], solver.model()["y"]) == (5, 6)

    def test_deep_negation_goes_through_lazy_path(self):
        x, y = Int("x"), Int("y")
        formula = Not(Or(x <= 0, And(y <= 0, x >= 10)))
        solver = Solver()
        solver.add(formula, x <= 5, y <= 0)
        # not(x <= 0) and not(y <= 0 and x >= 10): x >= 1 works with y <= 0 as long as x < 10.
        assert solver.check() is CheckResult.SAT


class TestHelpers:
    def test_is_satisfiable(self):
        x = Int("x")
        assert is_satisfiable([x >= 0])
        assert not is_satisfiable([x >= 1, x <= 0])

    def test_tseitin_produces_clauses(self):
        x, y = Int("x"), Int("y")
        cnf = tseitin(Or(x <= 0, And(y <= 0, x >= 3)))
        assert cnf.clauses
        assert cnf.num_vars >= 3
        assert len(cnf.var_of_atom) == 3


class TestProperties:
    @given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
    def test_disjunction_matches_semantics(self, a, b, c):
        x = Int("x")
        solver = Solver()
        solver.add(x.equals(c), Or(x.equals(a), x.equals(b)))
        expected = CheckResult.SAT if c in (a, b) else CheckResult.UNSAT
        assert solver.check() is expected

    @given(
        st.lists(st.integers(-8, 8), min_size=1, max_size=4),
        st.integers(-8, 8),
    )
    def test_membership_encoding(self, options, probe):
        x = Int("x")
        solver = Solver()
        solver.add(Or(*[x.equals(v) for v in options]), x.equals(probe))
        expected = CheckResult.SAT if probe in options else CheckResult.UNSAT
        assert solver.check() is expected
