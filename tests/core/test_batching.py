"""Batched sibling evaluation and residual-SMT session tests.

Both optimisations are pure work-movers: grouping sibling hole fills into
one batched ``execute`` and reusing an incremental solver session across a
sketch path must leave the synthesized program, the search order and every
deterministic counter unchanged -- only the amount of repeated setup drops.
The tests pin the counters (the optimisations actually engage) and the
invariance (disabling batching changes nothing observable).
"""

import pytest

from repro.baselines import spec2_config
from repro.benchmarks import r_benchmark_suite
from repro.benchmarks.runner import run_benchmark
from repro.core import SynthesisConfig, synthesize
from repro.core import completion
from repro.dataframe import Table

ORDERS = Table(
    ["region", "order"],
    [["west", "a"], ["west", "b"], ["north", "c"], ["west", "d"]],
)
COUNTS = Table(["region", "n"], [["west", 3], ["north", 1]])


def run(config=None):
    return synthesize([ORDERS], COUNTS, config=config or SynthesisConfig(timeout=30))


def test_sibling_batching_engages_and_counts():
    result = run()
    assert result.solved
    stats = result.stats.completion
    assert stats.sibling_batches > 0
    # Every batch groups at least two fills (singletons are not batches).
    assert stats.batched_fills >= 2 * stats.sibling_batches


def test_disabling_batching_changes_nothing_observable(monkeypatch):
    batched = run()
    monkeypatch.setattr(completion, "SIBLING_BATCH", 1)
    unbatched = run()
    assert unbatched.stats.completion.sibling_batches == 0
    assert unbatched.stats.completion.batched_fills == 0
    assert batched.solved and unbatched.solved
    assert batched.render() == unbatched.render()
    # The search itself is untouched: same completion work, same deduction
    # query sequence, same prescreen split.
    assert (
        batched.stats.completion.partial_programs
        == unbatched.stats.completion.partial_programs
    )
    assert batched.stats.deduction.smt_calls == unbatched.stats.deduction.smt_calls
    assert (
        batched.stats.deduction.prescreen_decided
        == unbatched.stats.deduction.prescreen_decided
    )


def test_batching_disabled_without_partial_evaluation():
    result = run(SynthesisConfig(timeout=30, partial_evaluation=False))
    assert result.solved
    assert result.stats.completion.sibling_batches == 0
    assert result.stats.completion.batched_fills == 0


def test_residual_sessions_engage_and_reuse():
    # A task deep enough that sibling candidates replay the same sketch
    # path (the tiny count task above resolves its few queries before the
    # residual tier, so the sessions would legitimately stay at zero).
    benchmark = r_benchmark_suite().get("c3_exam_gather_unite_spread")
    outcome = run_benchmark(benchmark, spec2_config(timeout=30))
    assert outcome.solved
    assert outcome.smt_sessions > 0
    # Sibling queries over the same sketch path must actually share their
    # session (the point of keying on the sketch path).
    assert outcome.smt_session_reuse > 0
    # A session exists only to serve real residual checks: never more
    # sessions than SMT calls.
    assert outcome.smt_sessions <= outcome.smt_calls


def test_batching_counters_deterministic_across_runs():
    first = run()
    second = run()
    for field in ("sibling_batches", "batched_fills"):
        assert getattr(first.stats.completion, field) == getattr(
            second.stats.completion, field
        )
    for field in ("smt_sessions", "smt_session_reuse", "smt_calls"):
        assert getattr(first.stats.deduction, field) == getattr(
            second.stats.deduction, field
        )


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_programs_identical_across_backends(backend):
    from repro.dataframe.backend import numpy_available

    if backend == "numpy" and not numpy_available():
        pytest.skip("numpy not installed (repro[fast])")
    reference = run()
    other = run(SynthesisConfig(timeout=30, backend=backend))
    assert other.solved
    assert other.render() == reference.render()
    # Deterministic counters, not just the program: the backends must walk
    # the identical search.
    assert other.stats.deduction.smt_calls == reference.stats.deduction.smt_calls
    assert (
        other.stats.completion.partial_programs
        == reference.stats.completion.partial_programs
    )
