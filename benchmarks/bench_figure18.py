"""Figure 18: Morpheus vs the SQLSynthesizer baseline (plus lambda2).

The paper reports that SQLSynthesizer solves 1 of the 80 data-preparation
benchmarks while Morpheus solves 96.4% of the SQL benchmarks.  These targets
time both tools on representative subsets of both suites and assert the
qualitative gap; the lambda2 baseline is also exercised on the R subset.

Regenerate the full comparison with::

    python -m repro.benchmarks.cli figure18 --timeout 60
"""


from repro.baselines import Lambda2Synthesizer, SqlSynthesizer
from repro.benchmarks import r_benchmark_suite, sql_benchmark_suite, run_suite
from repro.core import SynthesisConfig, sql_library
from conftest import (
    BENCH_FULL,
    BENCH_TIMEOUT,
    REPRESENTATIVE_BENCHMARKS,
    REPRESENTATIVE_SQL_BENCHMARKS,
)

R_SUITE = r_benchmark_suite()
SQL_SUITE = sql_benchmark_suite()
R_SUBSET = R_SUITE.subset(names=None if BENCH_FULL else REPRESENTATIVE_BENCHMARKS)
SQL_SUBSET = SQL_SUITE.subset(names=None if BENCH_FULL else REPRESENTATIVE_SQL_BENCHMARKS)


def test_morpheus_on_sql_benchmarks(benchmark):
    """Morpheus (SQL-relevant component subset) on the SQL suite."""
    def run():
        return run_suite(
            SQL_SUBSET, lambda t: SynthesisConfig(timeout=t),
            timeout=BENCH_TIMEOUT, label="morpheus", library=sql_library(),
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["solved"] = result.solved
    assert result.solved == result.total


def test_sqlsynthesizer_on_sql_benchmarks(benchmark):
    """The SQLSynthesizer baseline on the SQL suite (should solve them)."""
    def run():
        solved = 0
        for task in SQL_SUBSET:
            outcome = SqlSynthesizer(timeout=BENCH_TIMEOUT).synthesize(list(task.inputs), task.output)
            solved += int(outcome.solved)
        return solved

    solved = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["solved"] = solved
    assert solved >= len(SQL_SUBSET) - 1


def test_sqlsynthesizer_on_r_benchmarks(benchmark):
    """The SQLSynthesizer baseline on the data-preparation suite (mostly fails)."""
    def run():
        solved = 0
        for task in R_SUBSET:
            outcome = SqlSynthesizer(timeout=min(BENCH_TIMEOUT, 10)).synthesize(
                list(task.inputs), task.output
            )
            solved += int(outcome.solved)
        return solved

    solved = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["solved"] = solved
    # The reshaping categories are structurally out of reach for flat SQL.
    assert solved < len(R_SUBSET) / 2


def test_lambda2_on_r_benchmarks(benchmark):
    """The lambda2 baseline solves none of the data-preparation benchmarks."""
    def run():
        solved = 0
        for task in R_SUBSET:
            outcome = Lambda2Synthesizer(timeout=5).synthesize(list(task.inputs), task.output)
            solved += int(outcome.solved)
        return solved

    solved = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["solved"] = solved
    assert solved == 0


def test_morpheus_outperforms_sqlsynthesizer_on_r_subset(benchmark):
    """Morpheus solves strictly more of the R subset than the SQL baseline."""
    def run():
        morpheus = run_suite(
            R_SUBSET, lambda t: SynthesisConfig(timeout=t), timeout=BENCH_TIMEOUT, label="morpheus"
        )
        sql_solved = 0
        for task in R_SUBSET:
            outcome = SqlSynthesizer(timeout=min(BENCH_TIMEOUT, 10)).synthesize(
                list(task.inputs), task.output
            )
            sql_solved += int(outcome.solved)
        return morpheus.solved, sql_solved

    morpheus_solved, sql_solved = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["morpheus"] = morpheus_solved
    benchmark.extra_info["sqlsynthesizer"] = sql_solved
    assert morpheus_solved > sql_solved
