"""The built-in component library (tidyr + dplyr).

The paper's evaluation uses ten table transformation components from tidyr
and dplyr plus ten first-order value transformers.  :func:`standard_library`
builds exactly that set (``arrange`` is included as an eleventh transformer
because the motivating Example 3 uses it; callers can restrict the library).

New columns created by a component (the ``key``/``value`` columns of
``gather``, the aggregate column of ``summarise``, ...) receive canonical
machine-generated names derived from the hypothesis node that created them.
The synthesizer compares candidate outputs against the expected output with a
column-name-insensitive policy (see :func:`repro.dataframe.compare.align_columns`),
mirroring how the Morpheus artifact checks examples; the user-facing R
rendering keeps the canonical names.
"""

from __future__ import annotations

from typing import Sequence

from ..components import dplyr, tidyr
from ..components.errors import InvalidArgumentError
from ..components.values import default_value_components
from ..dataframe.table import Table
from .arguments import Aggregation, ColumnList, ColumnRef, MutationExpr, Predicate, ValueArgument
from .component import Component, ComponentLibrary, ValueParam
from .types import Type


def _one_arg(arguments: Sequence[ValueArgument], expected_type) -> ValueArgument:
    (argument,) = arguments
    if not isinstance(argument, expected_type):
        raise InvalidArgumentError(
            f"expected a {expected_type.__name__}, got {type(argument).__name__}"
        )
    return argument


# ----------------------------------------------------------------------
# Executor adapters: (tables, value arguments, fresh prefix) -> Table
# ----------------------------------------------------------------------
def _run_gather(tables, arguments, prefix):
    columns = _one_arg(arguments, ColumnList)
    # The key column's name is derived from the gathered columns rather than
    # from the hypothesis node: two gather applications over the same columns
    # (e.g. in the two branches of a consolidation join, as in the paper's
    # Example 3) then produce the *same* key column, so a later natural join
    # unifies them -- exactly the role the user-chosen key name plays in the
    # paper's R solutions.  The value column stays node-unique so the joined
    # branches keep their separate measurements.
    key_name = "key_" + "_".join(columns)
    return tidyr.gather(tables[0], key_name, f"{prefix}value", list(columns))


def _run_spread(tables, arguments, prefix):
    key, value = arguments
    return tidyr.spread(tables[0], key.name, value.name)


def _run_separate(tables, arguments, prefix):
    column = _one_arg(arguments, ColumnRef)
    return tidyr.separate(tables[0], column.name, [f"{prefix}left", f"{prefix}right"])


def _run_unite(tables, arguments, prefix):
    columns = _one_arg(arguments, ColumnList)
    return tidyr.unite(tables[0], f"{prefix}united", list(columns))


def _run_select(tables, arguments, prefix):
    columns = _one_arg(arguments, ColumnList)
    return dplyr.select(tables[0], list(columns))


def _run_filter(tables, arguments, prefix):
    predicate = _one_arg(arguments, Predicate)
    return dplyr.filter_rows(tables[0], predicate)


def _run_filter_batch(tables, argument_lists, prefix):
    predicates = [_one_arg(arguments, Predicate) for arguments in argument_lists]
    return dplyr.filter_rows_batch(tables[0], predicates)


def _run_group_by(tables, arguments, prefix):
    columns = _one_arg(arguments, ColumnList)
    return dplyr.group_by(tables[0], list(columns))


def _run_summarise(tables, arguments, prefix):
    aggregation = _one_arg(arguments, Aggregation)
    return dplyr.summarise(
        tables[0], f"{prefix}agg", aggregation.function, aggregation.column
    )


def _run_mutate(tables, arguments, prefix):
    expression = _one_arg(arguments, MutationExpr)
    return dplyr.mutate(tables[0], f"{prefix}val", expression)


def _run_inner_join(tables, arguments, prefix):
    return dplyr.inner_join(tables[0], tables[1])


def _run_arrange(tables, arguments, prefix):
    columns = _one_arg(arguments, ColumnList)
    return dplyr.arrange(tables[0], list(columns))


# ----------------------------------------------------------------------
# Renderers (R surface syntax)
# ----------------------------------------------------------------------
def _render_gather(table_args, arguments):
    columns = arguments[0].render_r()
    return f"gather({table_args[0]}, key, value, {columns})"


def _render_spread(table_args, arguments):
    return f"spread({table_args[0]}, {arguments[0].render_r()}, {arguments[1].render_r()})"


def _render_separate(table_args, arguments):
    return f"separate({table_args[0]}, {arguments[0].render_r()}, into = c(\"left\", \"right\"))"


def _render_unite(table_args, arguments):
    return f"unite({table_args[0]}, united, {arguments[0].render_r()})"


def _render_select(table_args, arguments):
    return f"select({table_args[0]}, {arguments[0].render_r()})"


def _render_filter(table_args, arguments):
    return f"filter({table_args[0]}, {arguments[0].render_r()})"


def _render_group_by(table_args, arguments):
    return f"group_by({table_args[0]}, {arguments[0].render_r()})"


def _render_summarise(table_args, arguments):
    return f"summarise({table_args[0]}, agg = {arguments[0].render_r()})"


def _render_mutate(table_args, arguments):
    return f"mutate({table_args[0]}, val = {arguments[0].render_r()})"


def _render_inner_join(table_args, arguments):
    return f"inner_join({table_args[0]}, {table_args[1]})"


def _render_arrange(table_args, arguments):
    return f"arrange({table_args[0]}, {arguments[0].render_r()})"


# ----------------------------------------------------------------------
# The library
# ----------------------------------------------------------------------
def standard_library(include_arrange: bool = True) -> ComponentLibrary:
    """The tidyr/dplyr component set used throughout the paper's evaluation."""
    components = [
        Component(
            "gather",
            1,
            (ValueParam("columns", Type.COLS),),
            _run_gather,
            _render_gather,
            "Collapse multiple columns into key/value pairs.",
        ),
        Component(
            "spread",
            1,
            (ValueParam("key", Type.COL), ValueParam("value", Type.COL)),
            _run_spread,
            _render_spread,
            "Spread a key/value pair across multiple columns.",
        ),
        Component(
            "separate",
            1,
            (ValueParam("column", Type.COL),),
            _run_separate,
            _render_separate,
            "Separate one column into two.",
        ),
        Component(
            "unite",
            1,
            (ValueParam("columns", Type.COLS),),
            _run_unite,
            _render_unite,
            "Unite two columns into one.",
        ),
        Component(
            "select",
            1,
            (ValueParam("columns", Type.COLS),),
            _run_select,
            _render_select,
            "Project a subset of columns.",
        ),
        Component(
            "filter",
            1,
            (ValueParam("predicate", Type.PREDICATE),),
            _run_filter,
            _render_filter,
            "Select a subset of rows.",
            batch_executor=_run_filter_batch,
        ),
        Component(
            "summarise",
            1,
            (ValueParam("aggregation", Type.AGGREGATION),),
            _run_summarise,
            _render_summarise,
            "Summarise each group to a single value.",
        ),
        Component(
            "group_by",
            1,
            (ValueParam("columns", Type.COLS),),
            _run_group_by,
            _render_group_by,
            "Group a table by one or more variables.",
        ),
        Component(
            "mutate",
            1,
            (ValueParam("expression", Type.MUTATION),),
            _run_mutate,
            _render_mutate,
            "Add a new computed column.",
        ),
        Component(
            "inner_join",
            2,
            (),
            _run_inner_join,
            _render_inner_join,
            "Natural inner join of two tables.",
        ),
    ]
    if include_arrange:
        components.append(
            Component(
                "arrange",
                1,
                (ValueParam("columns", Type.COLS),),
                _run_arrange,
                _render_arrange,
                "Sort rows by one or more columns.",
            )
        )
    value_names = tuple(component.name for component in default_value_components())
    return ComponentLibrary(tuple(components), value_names)


def sql_library() -> ComponentLibrary:
    """The eight-component library used for the SQLSynthesizer comparison.

    Figure 18 of the paper evaluates Morpheus on SQL benchmarks using "a total
    of eight higher-order components that are relevant to SQL": selection,
    projection, joins, grouping and aggregation -- i.e. the dplyr subset of
    the standard library.
    """
    names = (
        "select",
        "filter",
        "summarise",
        "group_by",
        "mutate",
        "inner_join",
        "arrange",
        "unite",
    )
    return standard_library(include_arrange=True).restricted_to(names)


def gather_requires_two_columns(table: Table, columns: Sequence[str]) -> bool:
    """True when gathering *columns* from *table* is well-formed (>= 2 columns)."""
    return len(columns) >= 2 and len(columns) < table.n_cols
