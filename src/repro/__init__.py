"""Morpheus reproduction: component-based synthesis of table transformations.

This package reproduces *"Component-based Synthesis of Table Consolidation
and Transformation Tasks from Examples"* (PLDI 2017) as a pure-Python
library.  The top-level namespace re-exports the pieces a user typically
needs: the table substrate, the synthesizer, and the component library.

Quickstart::

    from repro import SynthesisRequest, Table, solve

    inputs = [Table(["a", "b"], [[1, 2], [3, 4], [5, 6]])]
    output = Table(["a", "b"], [[3, 4], [5, 6]])
    result = solve(SynthesisRequest.from_tables(inputs, output))
    print(result.program)

:mod:`repro.api` is the sanctioned entry point -- it adds interactive
sessions (:func:`repro.api.create_session`) with resumable search, and its
dataclasses are the wire format of the HTTP service (:mod:`repro.service`).
"""

from .core import (
    Example,
    Morpheus,
    SpecLevel,
    SynthesisConfig,
    SynthesisResult,
    sql_library,
    standard_library,
    synthesize,
)
from .dataframe import Table, tables_equivalent, tables_match_for_synthesis

__version__ = "1.1.0"

#: Parallel/caching APIs re-exported lazily from :mod:`repro.engine` (the
#: engine imports the synthesizer, so an eager import here would be circular).
_ENGINE_EXPORTS = frozenset(
    {
        "ParallelRunner",
        "PortfolioResult",
        "synthesize_batch",
        "synthesize_portfolio",
    }
)

#: Facade APIs re-exported lazily from :mod:`repro.api` (same circularity:
#: the facade imports the synthesizer and the engine context).
_API_EXPORTS = frozenset(
    {
        "CandidateProgram",
        "SessionState",
        "SynthesisRequest",
        "SynthesisSession",
        "create_session",
        "solve",
    }
)

__all__ = [
    "CandidateProgram",
    "Example",
    "Morpheus",
    "ParallelRunner",
    "PortfolioResult",
    "SessionState",
    "SpecLevel",
    "SynthesisConfig",
    "SynthesisRequest",
    "SynthesisResult",
    "SynthesisSession",
    "Table",
    "__version__",
    "create_session",
    "solve",
    "sql_library",
    "standard_library",
    "synthesize",
    "synthesize_batch",
    "synthesize_portfolio",
    "tables_equivalent",
    "tables_match_for_synthesis",
]


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
