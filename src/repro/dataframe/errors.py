"""Exceptions raised by the dataframe substrate."""


class DataFrameError(Exception):
    """Base class for all errors raised by :mod:`repro.dataframe`."""


class SchemaError(DataFrameError):
    """A table was constructed or queried with an inconsistent schema."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the table."""

    def __init__(self, column, available):
        self.column = column
        self.available = tuple(available)
        super().__init__(
            f"column {column!r} not found; available columns: {list(available)}"
        )


class DuplicateColumnError(SchemaError):
    """A table would end up with two columns of the same name."""


class CellTypeError(DataFrameError):
    """A cell value does not match the declared type of its column."""
