"""Integration tests: the paper's motivating examples, end to end.

Example 1 is synthesized outright.  Example 2 and Example 3 are expensive
(category C2/C7 tasks whose full search takes tens of seconds to minutes), so
the synthesis runs are marked ``slow``; their reference pipelines are always
checked against the executor so the examples stay correct.
"""

import pytest

from repro import SynthesisConfig, Table, synthesize
from repro.components import arrange, filter_rows, gather, group_by, inner_join, mutate, spread, summarise, unite
from repro.dataframe import tables_match_for_synthesis

EX1_INPUT = Table(
    ["id", "year", "A", "B"],
    [[1, 2007, 5, 10], [2, 2007, 3, 50], [1, 2009, 5, 17], [2, 2009, 6, 17]],
)
EX1_OUTPUT = Table(
    ["id", "A_2007", "B_2007", "A_2009", "B_2009"],
    [[1, 5, 10, 5, 17], [2, 3, 50, 6, 17]],
)

FLIGHTS = Table(
    ["flight", "origin", "dest"],
    [[11, "EWR", "SEA"], [725, "JFK", "BQN"], [495, "JFK", "SEA"],
     [461, "LGA", "ATL"], [1696, "EWR", "ORD"], [1670, "EWR", "SEA"]],
)
EX2_OUTPUT = Table(
    ["origin", "n", "prop"],
    [["EWR", 2, 0.6666667], ["JFK", 1, 0.3333333]],
)

POSITIONS = Table(["frame", "X1", "X2", "X3"], [[1, 0, 0, 0], [2, 10, 15, 0], [3, 15, 10, 0]])
SPEEDS = Table(["frame", "X1", "X2", "X3"],
               [[1, 0, 0, 0], [2, 14.53, 12.57, 0], [3, 13.90, 14.65, 0]])
EX3_OUTPUT = Table(
    ["frame", "pos", "carid", "speed"],
    [[2, "X1", 10, 14.53], [3, "X2", 10, 14.65], [2, "X2", 15, 12.57], [3, "X1", 15, 13.90]],
)


class TestReferencePipelines:
    """The R programs shown in Section 2, replayed on our executor."""

    def test_example1_reference_program(self):
        df1 = gather(EX1_INPUT, "var", "val", ["A", "B"])
        df2 = unite(df1, "yearvar", ["var", "year"])
        df3 = spread(df2, "yearvar", "val")
        assert tables_match_for_synthesis(df3, EX1_OUTPUT)

    def test_example2_reference_program(self):
        df1 = filter_rows(FLIGHTS, lambda row: row["dest"] == "SEA")
        df2 = summarise(group_by(df1, ["origin"]), "n", "n")
        df3 = mutate(df2, "prop", lambda row, group: row["n"] / sum(group.column_values("n")))
        assert tables_match_for_synthesis(df3, EX2_OUTPUT)

    def test_example3_reference_program(self):
        df1 = gather(POSITIONS, "pos", "carid", ["X1", "X2", "X3"])
        df2 = gather(SPEEDS, "pos", "speed", ["X1", "X2", "X3"])
        df3 = inner_join(df1, df2)
        df4 = filter_rows(df3, lambda row: row["carid"] != 0)
        df5 = arrange(df4, ["carid", "frame"])
        assert tables_match_for_synthesis(df5, EX3_OUTPUT)


class TestSynthesis:
    def test_example1_is_synthesized(self):
        result = synthesize([EX1_INPUT], EX1_OUTPUT, config=SynthesisConfig(timeout=60))
        assert result.solved
        assert result.size == 3
        names = [line.split("=")[1].strip().split("(")[0] for line in result.render().splitlines()]
        assert names == ["gather", "unite", "spread"]

    @pytest.mark.slow
    def test_example2_is_synthesized(self):
        result = synthesize([FLIGHTS], EX2_OUTPUT, config=SynthesisConfig(timeout=120))
        assert result.solved
        assert result.size >= 3

    @pytest.mark.slow
    def test_example3_is_synthesized(self):
        result = synthesize([POSITIONS, SPEEDS], EX3_OUTPUT, config=SynthesisConfig(timeout=400))
        assert result.solved
