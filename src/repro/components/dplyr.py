"""Re-implementation of the dplyr verbs used by Morpheus.

``select``, ``filter``, ``summarise``, ``group_by``, ``mutate``,
``inner_join`` and ``arrange`` manipulate a data frame without changing its
long/wide orientation.  Grouping is carried as metadata on the table (see
:class:`repro.dataframe.Table`), exactly the information Spec 2's ``T.group``
attribute abstracts.

Every verb is a **columnar** transform: inputs are consumed as shared column
vectors and outputs are assembled column-by-column, so verbs that keep a
column intact (``select``, ``group_by``, ``mutate``'s pass-through columns)
share its vector with the input table instead of copying cells.  Grouping
metadata propagates uniformly: a verb's output stays grouped by every
grouping column that survives into the output schema (``summarise`` keeps
its dplyr-specific rule of dropping the last grouping level).

A row-major reference implementation of the same semantics lives in
:mod:`repro.components.reference`; a differential property test keeps the
two in lock-step.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..dataframe.cells import CellValue, value_sort_key
from ..dataframe.table import Table
from .errors import EvaluationError, InvalidArgumentError
from .values import AGGREGATORS, agg_count

#: A predicate over a single row, given as ``{column: value}``.
RowPredicate = Callable[[Dict[str, CellValue]], bool]

#: A mutate expression: receives the row and the rows of the row's group.
RowExpression = Callable[[Dict[str, CellValue], "GroupContext"], CellValue]


class GroupContext:
    """The rows of the group a ``mutate`` expression is evaluated in.

    dplyr evaluates aggregate calls inside ``mutate`` (e.g. ``sum(n)``) over
    the *group* of the current row, so expressions receive this context.
    """

    def __init__(self, table: Table, row_indices: Sequence[int]):
        self._table = table
        self._row_indices = tuple(row_indices)

    def column_values(self, column: str) -> Tuple[CellValue, ...]:
        """Values of *column* restricted to the rows of this group."""
        vector = self._table.column_values(column)
        return tuple(vector[i] for i in self._row_indices)

    @property
    def size(self) -> int:
        """Number of rows in the group."""
        return len(self._row_indices)


def _check_columns_exist(table: Table, columns: Sequence[str], verb: str) -> None:
    for name in columns:
        if not table.has_column(name):
            raise InvalidArgumentError(f"{verb}: column {name!r} not in table {list(table.columns)}")


def surviving_group_cols(table: Table, out_columns: Sequence[str]) -> Tuple[str, ...]:
    """The grouping columns of *table* that survive into *out_columns*.

    The uniform propagation rule shared by every verb that rebuilds its
    output table: grouping metadata follows the columns that still exist.
    """
    out = set(out_columns)
    return tuple(name for name in table.group_cols if name in out)


def select(table: Table, columns: Sequence[str]) -> Table:
    """Project the table onto *columns* (a strict subset, like the paper's spec)."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("select: must keep at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("select: selected columns must be distinct")
    _check_columns_exist(table, columns, "select")
    if len(columns) >= table.n_cols:
        raise EvaluationError("select: selection must drop at least one column")
    return table.select_columns(columns)


def filter_rows(table: Table, predicate: RowPredicate) -> Table:
    """Keep the rows satisfying *predicate*."""
    kept = [index for index in range(table.n_rows) if predicate(table.row_dict(index))]
    if len(kept) == table.n_rows:
        # The paper's spec requires a strictly smaller table (footnote 3):
        # a filter that keeps everything is never needed for a minimal program.
        raise EvaluationError("filter: predicate keeps every row")
    return table.take_rows(kept)


def group_by(table: Table, columns: Sequence[str]) -> Table:
    """Attach grouping metadata to the table."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("group_by: must group by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("group_by: grouping columns must be distinct")
    _check_columns_exist(table, columns, "group_by")
    return table.with_grouping(columns)


def summarise(
    table: Table,
    new_column: str,
    aggregator: str,
    target_column: str = None,
) -> Table:
    """Collapse each group to a single row holding an aggregate value.

    The output contains the grouping columns (one row per group) followed by
    the new aggregate column.  Like dplyr, the result drops the *last*
    grouping level, so ``summarise(group_by(df, g), ...)`` is ungrouped and a
    later ``mutate`` aggregates over the whole table (this is what makes
    ``mutate(prop = n / sum(n))`` in the paper's Example 2 work).
    """
    if aggregator not in AGGREGATORS:
        raise InvalidArgumentError(f"summarise: unknown aggregator {aggregator!r}")
    if aggregator != "n":
        if target_column is None:
            raise InvalidArgumentError(f"summarise: aggregator {aggregator!r} needs a target column")
        _check_columns_exist(table, [target_column], "summarise")
    group_columns = list(table.group_cols)
    if new_column in group_columns:
        raise EvaluationError(f"summarise: new column {new_column!r} collides with a grouping column")

    groups = table.group_row_indices()
    if aggregator == "n":
        aggregates = [agg_count([None] * len(row_indices)) for _key, row_indices in groups]
    else:
        target = table.column_values(target_column)
        aggregates = [
            AGGREGATORS[aggregator]([target[i] for i in row_indices])
            for _key, row_indices in groups
        ]

    out_columns = group_columns + [new_column]
    out_vectors = [
        [key[position] for key, _indices in groups]
        for position in range(len(group_columns))
    ]
    out_vectors.append(aggregates)
    result = Table.from_vectors(out_columns, out_vectors)
    remaining_groups = group_columns[:-1]
    if remaining_groups:
        result = result.with_grouping(remaining_groups)
    return result


def mutate(table: Table, new_column: str, expression: RowExpression) -> Table:
    """Add a new column computed from each row (and its group)."""
    if table.has_column(new_column):
        raise EvaluationError(f"mutate: column {new_column!r} already exists")
    group_of_row: Dict[int, GroupContext] = {}
    for _key, row_indices in table.group_row_indices():
        context = GroupContext(table, row_indices)
        for row_index in row_indices:
            group_of_row[row_index] = context

    values: List[CellValue] = []
    for row_index in range(table.n_rows):
        context = group_of_row.get(row_index, GroupContext(table, range(table.n_rows)))
        values.append(expression(table.row_dict(row_index), context))
    return table.with_column(new_column, values)


def inner_join(left: Table, right: Table) -> Table:
    """Natural inner join on all shared columns (like dplyr's default).

    The output keeps every left column followed by the right table's
    non-shared columns; like dplyr, the left table's grouping survives (all
    of its columns do).
    """
    shared = [name for name in left.columns if right.has_column(name)]
    if not shared:
        raise EvaluationError("inner_join: tables share no columns")
    left_vectors = [left.column_values(name) for name in shared]
    right_vectors = [right.column_values(name) for name in shared]
    right_extra = [name for name in right.columns if name not in shared]

    # Hash the right table's rows on the join key.
    buckets: Dict[Tuple, List[int]] = {}
    for row_index in range(right.n_rows):
        key = tuple(_join_key(vector[row_index]) for vector in right_vectors)
        buckets.setdefault(key, []).append(row_index)

    left_indices: List[int] = []
    right_indices: List[int] = []
    for row_index in range(left.n_rows):
        key = tuple(_join_key(vector[row_index]) for vector in left_vectors)
        for match in buckets.get(key, ()):
            left_indices.append(row_index)
            right_indices.append(match)

    if not left_indices:
        raise EvaluationError("inner_join: join result is empty")

    out_columns = list(left.columns) + right_extra
    out_vectors = [
        [vector[i] for i in left_indices]
        for vector in (left.column_values(name) for name in left.columns)
    ]
    out_vectors.extend(
        [vector[i] for i in right_indices]
        for vector in (right.column_values(name) for name in right_extra)
    )
    return Table.from_vectors(
        out_columns, out_vectors, group_cols=surviving_group_cols(left, out_columns)
    )


def _join_key(value: CellValue):
    if value is None:
        return (0, None)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, float(value))
    return (2, value)


def arrange(table: Table, columns: Sequence[str], descending: bool = False) -> Table:
    """Sort the table by *columns* (ascending by default, like dplyr)."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("arrange: must sort by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("arrange: sort columns must be distinct")
    _check_columns_exist(table, columns, "arrange")
    vectors = [table.column_values(name) for name in columns]

    def key(index):
        return tuple(value_sort_key(vector[index]) for vector in vectors)

    order = sorted(range(table.n_rows), key=key, reverse=descending)
    return table.take_rows(order)
