"""Unsat-core soundness tests.

Two properties are checked on curated fixtures (plus a seeded random sweep):

* every returned core is itself UNSAT (together with the base assertions);
* after :meth:`Solver.minimize_core`, dropping any single member of the core
  makes the remaining query satisfiable.
"""

import random

import pytest

from repro.smt import And, CheckResult, Int, Not, Or, Solver
from repro.smt.terms import FALSE

x, y, z = Int("x"), Int("y"), Int("z")


def assert_core_unsat(solver, named):
    """Property 1: the named core members plus the base are jointly UNSAT."""
    core = solver.unsat_core()
    assert core, "expected a non-empty core"
    replay = Solver()
    replay.add(*solver.assertions())
    replay.add(*[named[name] for name in core])
    assert replay.check() is CheckResult.UNSAT
    return core


def assert_core_minimal(solver, named):
    """Property 2: dropping any single member of a minimized core gives SAT."""
    core = solver.minimize_core()
    for dropped in core:
        replay = Solver()
        replay.add(*solver.assertions())
        replay.add(*[named[name] for name in core if name != dropped])
        assert replay.check() is CheckResult.SAT, (
            f"core member {dropped!r} is redundant"
        )
    return core


class TestCuratedFixtures:
    def test_two_member_core_ignores_the_bystander(self):
        solver = Solver()
        named = {"lo": x >= 5, "hi": x <= 3, "bystander": y >= 0}
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        core = assert_core_unsat(solver, named)
        assert "bystander" not in core
        core = assert_core_minimal(solver, named)
        assert set(core) == {"lo", "hi"}

    def test_transitive_cycle_needs_every_member(self):
        solver = Solver()
        named = {"ab": x < y, "bc": y < z, "ca": z < x}
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        assert_core_unsat(solver, named)
        core = assert_core_minimal(solver, named)
        assert set(core) == {"ab", "bc", "ca"}

    def test_core_excludes_base_assertions(self):
        solver = Solver()
        solver.add(x.equals(1))
        named = {"clash": x.equals(2), "free": y.equals(3)}
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        core = assert_core_minimal(solver, named)
        assert set(core) == {"clash"}

    def test_unsat_base_yields_an_empty_core(self):
        solver = Solver()
        solver.add(x.equals(1), x.equals(2))
        named = {"free": y.equals(5)}
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        assert solver.unsat_core() == ()

    def test_false_assumption_is_the_whole_core(self):
        solver = Solver()
        named = {"bad": FALSE, "fine": x >= 0}
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        core = assert_core_minimal(solver, named)
        assert set(core) == {"bad"}

    def test_boolean_structured_core_through_the_lazy_path(self):
        # Not(And(...)) has irreducible boolean structure, forcing the
        # persistent SAT session (final-conflict extraction) to produce the
        # core instead of the clausal deletion loop.
        solver = Solver()
        named = {
            "range": And(x >= 1, x <= 2),
            "negation": Not(And(x >= 1, x <= 2)),
            "bystander": Not(And(y >= 4, y <= 3)),
        }
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        assert_core_unsat(solver, named)
        core = assert_core_minimal(solver, named)
        assert set(core) == {"range", "negation"}

    def test_disjunctive_core(self):
        solver = Solver()
        named = {
            "cases": Or(x.equals(1), x.equals(5)),
            "floor": x >= 6,
            "bystander": y <= 9,
        }
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        core = assert_core_minimal(solver, named)
        assert set(core) == {"cases", "floor"}

    def test_minimize_is_idempotent(self):
        solver = Solver()
        named = {"lo": x >= 5, "hi": x <= 3, "noise": z.equals(0)}
        assert solver.check_assumptions(named) is CheckResult.UNSAT
        first = solver.minimize_core()
        second = solver.minimize_core()
        assert first == second

    def test_sat_queries_leave_an_empty_core(self):
        solver = Solver()
        named = {"a": x >= 0, "b": x <= 10}
        assert solver.check_assumptions(named) is CheckResult.SAT
        assert solver.unsat_core() == ()


class TestRandomizedCores:
    @pytest.mark.parametrize("seed", range(30))
    def test_every_unsat_core_is_unsat_and_minimizable(self, seed):
        rng = random.Random(seed)
        names = ["u", "v"]
        atoms = []
        for _ in range(rng.randint(3, 6)):
            name = rng.choice(names)
            bound = rng.randint(-3, 3)
            atoms.append(rng.choice([Int(name) >= bound, Int(name) <= bound,
                                     Int(name).equals(bound)]))
        named = {f"n{i}": atom for i, atom in enumerate(atoms)}
        solver = Solver()
        if solver.check_assumptions(named) is not CheckResult.UNSAT:
            return
        assert_core_unsat(solver, named)
        assert_core_minimal(solver, named)
