"""Table equivalence used by the synthesizer's ``CHECK`` step.

Stack Overflow posters rarely care about row order, and the column order of a
``spread`` result depends on the key ordering, so the synthesizer compares the
candidate output against the expected output with configurable leniency.  The
default (:data:`DEFAULT_POLICY`) ignores row order but requires identical
column names; this matches how the paper's motivating examples are judged
(Example 3 uses an explicit ``arrange`` when the asker requested an order).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cells import value_sort_key, values_equal
from .table import Table


@dataclass(frozen=True)
class ComparePolicy:
    """How strictly two tables are compared.

    Attributes
    ----------
    ignore_row_order:
        Treat rows as a multiset rather than a sequence.
    ignore_col_order:
        Allow columns to appear in a different order (names must still match).
    ignore_col_names:
        Compare by position only; column names are not required to match.
        (Used by the SQL baseline, whose synthesized aggregate columns have
        machine-generated names.)
    """

    ignore_row_order: bool = True
    ignore_col_order: bool = False
    ignore_col_names: bool = False


#: The policy used by the synthesizer unless a task overrides it.
DEFAULT_POLICY = ComparePolicy()

#: Strict, positional comparison (exact reproduction of Definition 1 equality).
STRICT_POLICY = ComparePolicy(ignore_row_order=False, ignore_col_order=False)

#: Lenient comparison used for the SQL baseline of Figure 18.
POSITIONAL_POLICY = ComparePolicy(ignore_row_order=True, ignore_col_order=False, ignore_col_names=True)


def _rows_equal(left, right) -> bool:
    return all(values_equal(lvalue, rvalue) for lvalue, rvalue in zip(left, right))


def _multiset_rows_equal(left_rows, right_rows) -> bool:
    def canonical(rows):
        return sorted(
            rows, key=lambda row: tuple(value_sort_key(value) for value in row)
        )

    left_sorted = canonical(left_rows)
    right_sorted = canonical(right_rows)
    return all(_rows_equal(lrow, rrow) for lrow, rrow in zip(left_sorted, right_sorted))


def _column_fingerprint(table: Table, index: int):
    """A canonical multiset of the values of one column (float-tolerant)."""
    values = []
    for row in table.rows:
        value = row[index]
        if isinstance(value, float):
            value = round(value, 6)
        values.append(value if not isinstance(value, float) or not value.is_integer() else int(value))
    return tuple(sorted(values, key=value_sort_key))


def align_columns(actual: Table, expected: Table):
    """Find a permutation of *actual*'s columns matching *expected*.

    Synthesized programs give machine-generated names to new columns, so the
    candidate output is compared to the expected output up to a bijection
    between columns.  Returns the list of actual column names in expected
    order, or ``None`` if no alignment reproduces the expected rows (as a
    multiset).

    Columns with matching names are preferred; the remaining columns are
    matched by backtracking over columns with identical value multisets.
    """
    if actual.n_rows != expected.n_rows or actual.n_cols != expected.n_cols:
        return None

    expected_count = expected.n_cols
    candidates = []
    for expected_index in range(expected_count):
        expected_name = expected.columns[expected_index]
        fingerprint = _column_fingerprint(expected, expected_index)
        matching = []
        for actual_index in range(actual.n_cols):
            if _column_fingerprint(actual, actual_index) == fingerprint:
                matching.append(actual_index)
        if not matching:
            return None
        # Prefer a same-named column when one exists.
        matching.sort(key=lambda index: (actual.columns[index] != expected_name, index))
        candidates.append(matching)

    assignment = [None] * expected_count
    used = set()

    def backtrack(position: int) -> bool:
        if position == expected_count:
            aligned = actual.select_columns([actual.columns[i] for i in assignment])
            return _multiset_rows_equal(aligned.rows, expected.rows)
        for actual_index in candidates[position]:
            if actual_index in used:
                continue
            used.add(actual_index)
            assignment[position] = actual_index
            if backtrack(position + 1):
                return True
            used.discard(actual_index)
        return False

    if backtrack(0):
        return [actual.columns[i] for i in assignment]
    return None


def tables_match_for_synthesis(actual: Table, expected: Table) -> bool:
    """The CHECK used by the synthesizer: rows as a multiset, columns up to renaming."""
    return align_columns(actual, expected) is not None


def tables_equivalent(
    actual: Table, expected: Table, policy: ComparePolicy = DEFAULT_POLICY
) -> bool:
    """Return ``True`` if *actual* matches *expected* under *policy*."""
    if actual.n_rows != expected.n_rows or actual.n_cols != expected.n_cols:
        return False

    if policy.ignore_col_names:
        actual_rows = actual.rows
        expected_rows = expected.rows
    elif policy.ignore_col_order:
        if actual.header_set() != expected.header_set():
            return False
        actual = actual.select_columns(list(expected.columns))
        actual_rows = actual.rows
        expected_rows = expected.rows
    else:
        if actual.columns != expected.columns:
            return False
        actual_rows = actual.rows
        expected_rows = expected.rows

    if policy.ignore_row_order:
        return _multiset_rows_equal(actual_rows, expected_rows)
    return all(_rows_equal(arow, erow) for arow, erow in zip(actual_rows, expected_rows))
