"""Synthesis-as-a-service: a session layer over the anytime search kernel.

The service turns the facade's interactive sessions (:mod:`repro.api`) into
a long-lived, multi-tenant process:

* :mod:`repro.service.sessions` -- the session store: an in-memory registry
  with TTL expiry, a token-bucket rate limiter, optional JSON-file
  persistence of frontier snapshots, and a background scheduler thread that
  slices kernel steps round-robin across live sessions through the engine's
  :class:`~repro.engine.parallel.KernelInterleaver`.
* :mod:`repro.service.api` -- the HTTP layer (stdlib ``http.server``, no
  external dependencies): submit examples, poll or stream candidates,
  add distinguishing examples that *resume* the suspended search.

Boot a server with ``repro-bench serve --port 8642`` or programmatically::

    from repro.service import serve

    serve(port=8642)
"""

from .api import SynthesisHTTPServer, make_server, serve
from .sessions import (
    RateLimited,
    ServiceSession,
    SessionStore,
    TokenBucket,
    UnknownSession,
)

__all__ = [
    "RateLimited",
    "ServiceSession",
    "SessionStore",
    "SynthesisHTTPServer",
    "TokenBucket",
    "UnknownSession",
    "make_server",
    "serve",
]
