"""Paper Example 2: selection plus computation (filter/group_by/summarise/mutate).

For each origin airport, compute the number and proportion of flights that go
to Seattle.  This exercises the arithmetic side of the DSL: the synthesized
program ends with ``mutate(prop = n / sum(n))``.

Run with::

    python examples/example2_flights.py
"""

from repro import Table
from repro.api import SynthesisRequest, create_session

FLIGHTS = Table(
    ["flight", "origin", "dest"],
    [
        [11, "EWR", "SEA"],
        [725, "JFK", "BQN"],
        [495, "JFK", "SEA"],
        [461, "LGA", "ATL"],
        [1696, "EWR", "ORD"],
        [1670, "EWR", "SEA"],
    ],
)

EXPECTED_OUTPUT = Table(
    ["origin", "n", "prop"],
    [
        ["EWR", 2, 0.6666667],
        ["JFK", 1, 0.3333333],
    ],
)


def main() -> None:
    request = SynthesisRequest.from_tables([FLIGHTS], EXPECTED_OUTPUT, timeout=120)
    result = create_session(request).solve()
    print("flights:")
    print(FLIGHTS.to_markdown())
    print()
    if result.solved:
        print(f"synthesized in {result.elapsed:.2f}s:")
        print(result.render(["flights"]))
    else:
        print("no program found within the time limit")


if __name__ == "__main__":
    main()
