"""The synthesis service's HTTP layer.

Built on the stdlib ``ThreadingHTTPServer`` -- no web framework, no new
dependencies.  One handler thread per connection; all kernel work happens on
the store's single scheduler thread, so handlers only parse requests, wait
on per-session condition variables, and serialise responses.

Endpoints (all bodies are JSON; the facade dataclasses of :mod:`repro.api`
are the wire format):

``GET  /healthz``
    Liveness probe: ``{"status": "ok"}``.
``GET  /metrics``
    Service-wide counters: live/active session counts, kernel steps,
    prescreen and observational-equivalence hit rates, rate-limit denials.
``POST /v1/sessions``
    Create a session from a ``SynthesisRequest`` payload; ``201`` with the
    session id and initial state, ``400`` on malformed payloads, ``429``
    when the token bucket is drained.
``GET  /v1/sessions/{id}``
    The session's current :class:`~repro.api.SessionState`.
``GET  /v1/sessions/{id}/programs``
    Top-k candidates.  ``?wait=SECONDS`` blocks until at least ``?count=N``
    candidates exist (or the session settles); ``?stream=1`` switches to a
    chunked newline-delimited JSON stream that emits each candidate as the
    search discovers it -- the anytime kernel made streamable.
``POST /v1/sessions/{id}/examples``
    Add a distinguishing example.  The suspended frontier is *resumed* --
    never restarted -- and the response carries the post-resume state with
    every prior candidate revalidated against the new example.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ...api import ExamplePayload, RequestError, SynthesisRequest
from ..sessions import RateLimited, SessionStore, UnknownSession

DEFAULT_PORT = 8642

#: Longest a blocking ``?wait=``/stream request may hold its handler thread.
MAX_WAIT_SECONDS = 300.0

#: Largest request body accepted before parsing (maps to HTTP 413); example
#: tables a few orders of magnitude past anything the synthesizer handles
#: still fit, but a hostile Content-Length cannot make the server allocate
#: arbitrary memory.
MAX_BODY_BYTES = 8 * 1024 * 1024

_SESSION_ROUTE = re.compile(r"^/v1/sessions/([0-9a-f]{1,32})(/programs|/examples)?$")


class PayloadTooLarge(ValueError):
    """The request body exceeds :data:`MAX_BODY_BYTES` (maps to HTTP 413)."""


class SynthesisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SessionStore`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], store: SessionStore) -> None:
        super().__init__(address, SynthesisRequestHandler)
        self.store = store

    def server_close(self) -> None:  # pragma: no cover - exercised via serve()
        super().server_close()
        self.store.close()


class SynthesisRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-synthesis"

    #: Quiet by default; the CLI flips this on with --verbose.
    verbose = False

    @property
    def store(self) -> SessionStore:
        return self.server.store

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:
            super().log_message(format, *args)

    # -- response helpers ---------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:
        try:
            self._route_get()
        except UnknownSession as error:
            self._error(404, f"unknown session {error.args[0]!r}")
        except BrokenPipeError:
            self.close_connection = True

    def do_POST(self) -> None:
        try:
            self._route_post()
        except UnknownSession as error:
            self._error(404, f"unknown session {error.args[0]!r}")
        except RateLimited as error:
            self._error(429, str(error))
        except PayloadTooLarge as error:
            self._error(413, str(error))
            # The unread body would be parsed as the next request.
            self.close_connection = True
        except RequestError as error:
            self._error(400, str(error))
        except (ValueError, KeyError, TypeError) as error:
            self._error(400, f"malformed request: {error!r}")

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._send_json(200, {"status": "ok"})
            return
        if url.path == "/metrics":
            self._send_json(200, self.store.metrics())
            return
        if url.path == "/v1/sessions":
            self._send_json(200, {"sessions": self.store.list_sessions()})
            return
        match = _SESSION_ROUTE.match(url.path)
        if match and match.group(2) is None:
            self._send_json(200, self.store.get(match.group(1)).state_json())
            return
        if match and match.group(2) == "/programs":
            self._programs(match.group(1), parse_qs(url.query))
            return
        self._error(404, f"no such endpoint: {url.path}")

    def _route_post(self) -> None:
        # Deserialisation goes through the store: building the payload's
        # Table objects mutates the installed execution counters and intern
        # pool, which on a handler thread would corrupt whichever session's
        # context the scheduler has active (see SessionStore.deserialize).
        url = urlsplit(self.path)
        if url.path == "/v1/sessions":
            request = self.store.deserialize(SynthesisRequest.from_json, self._read_json())
            session = self.store.create(request)
            payload = session.state_json()
            self._send_json(201, payload)
            return
        match = _SESSION_ROUTE.match(url.path)
        if match and match.group(2) == "/examples":
            example = self.store.deserialize(ExamplePayload.from_json, self._read_json())
            session = self.store.add_example(match.group(1), example)
            self._send_json(200, session.state_json())
            return
        self._error(404, f"no such endpoint: {url.path}")

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("request body is required")
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as error:
            raise RequestError(f"request body is not valid JSON: {error}") from error

    # -- candidate polling / streaming ---------------------------------
    @staticmethod
    def _query_number(query, key, default, cast):
        values = query.get(key)
        if not values:
            return default
        try:
            return cast(values[-1])
        except ValueError as error:
            raise RequestError(f"query parameter {key!r} is malformed: {error}") from error

    def _programs(self, session_id: str, query: dict) -> None:
        session = self.store.get(session_id)
        count = self._query_number(query, "count", None, int)
        wait = self._query_number(query, "wait", None, float)
        if wait is not None:
            wait = max(0.0, min(wait, MAX_WAIT_SECONDS))
        if query.get("stream", ["0"])[-1] not in ("0", "", "false"):
            self._stream_programs(session, count, wait)
            return
        target = count if count is not None else session.session.target
        if wait is not None:
            session.wait_for(
                lambda: len(session.session.candidates) >= target, timeout=wait
            )
        payload = session.state_json()
        if count is not None:
            payload["candidates"] = payload["candidates"][:count]
        self._send_json(200, payload)

    def _stream_programs(
        self, session, count: Optional[int], wait: Optional[float]
    ) -> None:
        """Chunked NDJSON: one line per candidate, then a final status line.

        The stream ends when *count* candidates have been sent, the session
        settles (done / exhausted / timeout / expired), or *wait* seconds
        pass -- whichever comes first.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        budget = MAX_WAIT_SECONDS if wait is None else wait
        deadline = time.monotonic() + budget
        sent = 0
        try:
            while True:
                candidates = session.session.candidates
                while sent < len(candidates) and (count is None or sent < count):
                    self._write_chunk(candidates[sent].to_json())
                    sent += 1
                if count is not None and sent >= count:
                    break
                if session.expired or session.session.finished:
                    break
                # One shared deadline across all waits: a slow trickle of
                # candidates must not hold the handler past the budget.
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                grew = session.wait_for(
                    lambda: len(session.session.candidates) > sent, timeout=remaining
                )
                if not grew:
                    break
            self._write_chunk(
                {
                    "status": session.status,
                    "candidates_sent": sent,
                    "counters": session.session.counters(),
                }
            )
            self.wfile.write(b"0\r\n\r\n")
        except BrokenPipeError:
            pass
        self.close_connection = True

    def _write_chunk(self, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8") + b"\n"
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
        self.wfile.flush()


def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    store: Optional[SessionStore] = None,
    **store_options,
) -> SynthesisHTTPServer:
    """Build a ready-to-run server (own it: ``serve_forever`` / ``shutdown``)."""
    return SynthesisHTTPServer((host, port), store or SessionStore(**store_options))


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    verbose: bool = False,
    **store_options,
) -> int:
    """Run the service in the foreground until interrupted (CLI entry point)."""
    SynthesisRequestHandler.verbose = verbose
    server = make_server(host=host, port=port, **store_options)
    bound = server.server_address
    print(f"synthesis service listening on http://{bound[0]}:{bound[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
