"""Tests for the top-level synthesis algorithm (Algorithm 1)."""

from repro.core import (
    Example,
    Morpheus,
    SpecLevel,
    SynthesisConfig,
    sql_library,
    standard_library,
    synthesize,
)
from repro.dataframe import Table, tables_match_for_synthesis
from repro.core.hypothesis import evaluate

STUDENTS = Table(["name", "age", "gpa"],
                 [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])


def check_result(result, example):
    assert result.solved
    assert result.program is not None
    actual = evaluate(result.program, list(example.inputs))
    assert tables_match_for_synthesis(actual, example.output)


class TestSimpleTasks:
    def test_filter_task(self):
        output = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
        result = synthesize([STUDENTS], output, config=SynthesisConfig(timeout=20))
        check_result(result, Example.make([STUDENTS], output))
        assert result.size == 1

    def test_select_task(self):
        output = Table(["name", "gpa"], [["Alice", 4.0], ["Bob", 3.2], ["Tom", 3.0]])
        result = synthesize([STUDENTS], output, config=SynthesisConfig(timeout=20))
        check_result(result, Example.make([STUDENTS], output))

    def test_count_task(self):
        table = Table(["city", "person"],
                      [["austin", "a"], ["austin", "b"], ["waco", "c"]])
        output = Table(["city", "n"], [["austin", 2], ["waco", 1]])
        result = synthesize([table], output, config=SynthesisConfig(timeout=30))
        check_result(result, Example.make([table], output))

    def test_join_task(self):
        left = Table(["id", "x"], [[1, "a"], [2, "b"], [3, "c"]])
        right = Table(["id", "y"], [[1, 10], [2, 30], [3, 40]])
        output = Table(["id", "x", "y"], [[1, "a", 10], [2, "b", 30], [3, "c", 40]])
        result = synthesize([left, right], output, config=SynthesisConfig(timeout=30))
        check_result(result, Example.make([left, right], output))

    def test_gather_task(self):
        wide = Table(["shop", "q1", "q2"], [["n", 10, 12], ["s", 7, 6]])
        from repro.components import gather

        output = gather(wide, "quarter", "sales", ["q1", "q2"])
        result = synthesize([wide], output, config=SynthesisConfig(timeout=30))
        check_result(result, Example.make([wide], output))

    def test_unsolvable_task_reports_failure(self):
        # The output values cannot be produced from the input by any program
        # in the language within the budget.
        output = Table(["name"], [["Zoe"]])
        result = synthesize([STUDENTS], output, config=SynthesisConfig(timeout=3, max_size=2))
        assert not result.solved
        assert result.program is None
        assert result.render() == "<no program found>"

    def test_timeout_is_respected(self):
        output = Table(["name"], [["Zoe"]])
        result = synthesize([STUDENTS], output, config=SynthesisConfig(timeout=1.0, max_size=3))
        assert result.elapsed < 10

    def test_timeout_is_honored_inside_refinement_fanout(self):
        # A library whose iteration never terminates: without the deadline
        # check inside the refinement loop, a single hypothesis expansion
        # would spin forever fanning out refinements.
        class EndlessLibrary:
            def __init__(self, components):
                self._components = list(components)

            def __iter__(self):
                while True:
                    yield from self._components

        output = Table(["name"], [["Zoe"]])
        synthesizer = Morpheus(
            library=EndlessLibrary(standard_library()),
            config=SynthesisConfig(timeout=0.5),
        )
        result = synthesizer.synthesize(Example.make([STUDENTS], output))
        assert not result.solved
        assert result.elapsed < 10


class TestConfigurations:
    def test_describe(self):
        assert SynthesisConfig().describe() == "spec2"
        assert SynthesisConfig(spec_level=SpecLevel.SPEC1).describe() == "spec1"
        assert SynthesisConfig(deduction=False).describe() == "no-deduction"
        assert SynthesisConfig(partial_evaluation=False).describe() == "spec2-no-pe"
        assert SynthesisConfig(prescreen=False).describe() == "spec2-no-prescreen"

    def test_prescreen_counters_surface_through_synthesis_stats(self):
        # A task whose completion enumerates (and prunes) candidate hole
        # fillings, so the prescreen's share of the pruning is visible.
        from repro.benchmarks import r_benchmark_suite

        benchmark = r_benchmark_suite().get("c2_orders_count_by_region")
        table, output = benchmark.inputs[0], benchmark.output
        tiered = synthesize([table], output, config=SynthesisConfig(timeout=30))
        plain = synthesize(
            [table], output, config=SynthesisConfig(timeout=30, prescreen=False)
        )
        assert tiered.solved and plain.solved
        assert tiered.render() == plain.render()
        assert tiered.stats.prescreen_decided > 0
        assert 0.0 < tiered.stats.prescreen_hit_rate <= 1.0
        assert plain.stats.prescreen_decided == 0
        assert plain.stats.prescreen_fallback == 0
        # The prescreen's pruning shows up inside sketch completion too.
        assert tiered.stats.completion.pruned_by_prescreen > 0
        assert (
            tiered.stats.completion.pruned_by_prescreen
            <= tiered.stats.completion.pruned_partial
        )

    def test_no_deduction_still_solves_simple_tasks(self):
        output = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
        result = synthesize(
            [STUDENTS], output, config=SynthesisConfig(timeout=20, deduction=False)
        )
        assert result.solved
        assert result.stats.deduction.smt_calls == 0

    def test_spec1_solves_simple_tasks(self):
        output = Table(["name", "gpa"], [["Alice", 4.0], ["Bob", 3.2], ["Tom", 3.0]])
        result = synthesize(
            [STUDENTS], output,
            config=SynthesisConfig(timeout=20, spec_level=SpecLevel.SPEC1),
        )
        assert result.solved

    def test_deduction_reduces_checked_programs(self):
        table = Table(["city", "person"],
                      [["austin", "a"], ["austin", "b"], ["waco", "c"]])
        output = Table(["city", "n"], [["austin", 2], ["waco", 1]])
        with_deduction = synthesize([table], output, config=SynthesisConfig(timeout=30))
        without = synthesize(
            [table], output, config=SynthesisConfig(timeout=30, deduction=False)
        )
        assert with_deduction.solved and without.solved
        assert (
            with_deduction.stats.programs_checked <= without.stats.programs_checked
        )

    def test_restricted_library(self):
        output = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
        synthesizer = Morpheus(library=sql_library(), config=SynthesisConfig(timeout=20))
        result = synthesizer.synthesize(Example.make([STUDENTS], output))
        assert result.solved

    def test_stats_are_populated(self):
        output = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
        result = synthesize([STUDENTS], output, config=SynthesisConfig(timeout=20))
        stats = result.stats
        assert stats.hypotheses_expanded >= 1
        assert stats.hypotheses_enqueued >= stats.hypotheses_expanded
        assert stats.sketches_generated >= 1
        assert 0.0 <= stats.prune_rate <= 1.0


class TestRendering:
    def test_render_uses_input_names(self):
        output = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
        result = synthesize([STUDENTS], output, config=SynthesisConfig(timeout=20))
        text = result.render(["students"])
        assert "students" in text
        assert text.startswith("df1 =")
