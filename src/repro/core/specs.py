"""First-order component specifications (Tables 1, 2 and 3 of the paper).

Every table transformer is equipped with an over-approximate first-order
specification relating the attributes of its output table to the attributes
of its input table(s).  Two levels are provided:

* :data:`SpecLevel.SPEC1` -- constraints over ``row`` / ``col`` only
  (Table 2 of the paper).
* :data:`SpecLevel.SPEC2` -- additionally constrains ``group``, ``newCols``
  and ``newVals`` (Table 3).

The constraints below are *sound* for the executor in
:mod:`repro.components`; where the paper's published inequality is not sound
for faithful tidyr/dplyr semantics (e.g. ``unite`` can *remove* previously-new
column names, ``spread`` over a single key value can shrink the table), the
bound is relaxed just enough to stay an over-approximation.  DESIGN.md lists
these adjustments.

Every specification carries **two interpretations** that must be kept in
lock-step (the two-tier deduction invariant, see DESIGN.md):

* ``spec_<name>`` builds the :class:`~repro.smt.terms.Formula` discharged by
  the SMT stack (tier 2);
* ``transfer_<name>`` is the compiled interval transfer function consumed by
  the tier-1 prescreen (:mod:`repro.core.propagation`): the same
  inequalities, expressed as ``[lo, hi]`` box refinements over the attribute
  indices ``ROW`` .. ``NEW_VALS``.

A transfer may be *weaker* than its formula twin (any missed refinement just
falls through to the solver) but never stronger; the property tests in
``tests/core/test_propagation.py`` enforce the over-approximation direction
for every component, so an edit to one interpretation that forgets the other
fails CI.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..smt.terms import Formula, Or, conjoin
from .abstraction import SpecLevel, TableVars
from .propagation import (
    COL,
    GROUP,
    NEW_COLS,
    NEW_VALS,
    ROW,
    Box,
    TransferFunction,
    at_least,
    eq,
    exact,
    ge,
    ge_min,
    gt,
    le,
    le_max,
    le_sum,
    lt,
)

#: The type of a component specification: ``spec(output, inputs, level)``.
SpecFunction = Callable[[TableVars, Sequence[TableVars], SpecLevel], Formula]


def spec_gather(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``gather`` collapses >=2 columns into key/value pairs."""
    (t,) = ins
    constraints = [
        out.row >= t.row,
        out.col <= t.col,
        out.col >= 3,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals + 2,
            out.new_cols <= t.new_cols + 2,
        ]
    return conjoin(constraints)


def spec_spread(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``spread`` turns a key/value pair of columns into one column per key."""
    (t,) = ins
    constraints = [
        out.row <= t.row,
        out.col >= t.col - 1,
        out.row >= 1,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals,
            out.new_cols <= t.new_vals,
        ]
    return conjoin(constraints)


def spec_separate(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``separate`` splits one column into two."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col + 1),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals >= t.new_vals + 2,
            out.new_cols <= t.new_cols + 2,
            out.new_cols >= 2,
        ]
    return conjoin(constraints)


def spec_unite(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``unite`` pastes two columns into one."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col - 1),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            # The united column gets a fresh name (+1) but the two source
            # columns disappear from the header (each may have been new).
            out.new_vals >= t.new_vals - 1,
            out.new_vals <= t.new_vals + t.row + 1,
            out.new_cols <= t.new_cols + 1,
            out.new_cols >= t.new_cols - 1,
            out.new_cols >= 1,
        ]
    return conjoin(constraints)


def spec_select(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``select`` projects onto a strict subset of the columns."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col < t.col,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals,
            out.new_cols <= t.new_cols,
        ]
    return conjoin(constraints)


def spec_filter(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``filter`` keeps a strict subset of the rows."""
    (t,) = ins
    constraints = [
        out.row < t.row,
        out.col.equals(t.col),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals,
            out.new_cols.equals(t.new_cols),
        ]
    return conjoin(constraints)


def spec_summarise(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``summarise`` collapses each group to one row with one aggregate column."""
    (t,) = ins
    constraints = [
        out.row <= t.row,
        out.col <= t.col + 1,
        out.col >= 1,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.row.equals(t.group),
            out.group <= t.group,
            out.new_vals <= t.new_vals + t.group + 1,
            out.new_cols <= t.new_cols + 1,
            out.new_cols >= 1,
        ]
    return conjoin(constraints)


def spec_group_by(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``group_by`` only attaches grouping metadata."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group >= 1,
            out.group <= t.row,
            out.new_vals.equals(t.new_vals),
            out.new_cols.equals(t.new_cols),
        ]
    return conjoin(constraints)


def spec_mutate(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``mutate`` adds one computed column."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col + 1),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group.equals(t.group),
            out.new_cols.equals(t.new_cols + 1),
            out.new_vals > t.new_vals,
            out.new_vals <= t.new_vals + t.row + 1,
        ]
    return conjoin(constraints)


def spec_inner_join(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``inner_join`` performs a natural join of two tables."""
    t1, t2 = ins
    constraints = [
        # Min(r1, r2) <= out.row <= Max(r1, r2): encoded with disjunctions.
        Or(t1.row <= out.row, t2.row <= out.row),
        Or(out.row <= t1.row, out.row <= t2.row),
        out.col <= t1.col + t2.col - 1,
        out.col >= t1.col,
        out.col >= t2.col,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group.equals(1),
            out.new_cols <= t1.new_cols + t2.new_cols,
            out.new_vals <= t1.new_vals + t2.new_vals,
        ]
    return conjoin(constraints)


def spec_arrange(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``arrange`` reorders rows."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group.equals(t.group),
            out.new_vals.equals(t.new_vals),
            out.new_cols.equals(t.new_cols),
        ]
    return conjoin(constraints)


def spec_true(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """The trivial specification ``true`` (always a valid over-approximation)."""
    return conjoin([])


#: Specification of every built-in table transformer, by component name.
SPECIFICATIONS: Dict[str, SpecFunction] = {
    "gather": spec_gather,
    "spread": spec_spread,
    "separate": spec_separate,
    "unite": spec_unite,
    "select": spec_select,
    "filter": spec_filter,
    "summarise": spec_summarise,
    "group_by": spec_group_by,
    "mutate": spec_mutate,
    "inner_join": spec_inner_join,
    "arrange": spec_arrange,
}


# ----------------------------------------------------------------------
# Compiled interval interpretation (tier 1 of the deduction pipeline)
# ----------------------------------------------------------------------
# Each ``transfer_<name>`` below restates its ``spec_<name>`` twin
# constraint-for-constraint over attribute boxes.  Keep the two in lock-step: a
# constraint added to the formula must be added (or consciously omitted as
# "solver-only") here, and vice versa -- the prescreen may only ever be
# weaker than the formula, never stronger.

def transfer_gather(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    ge(out, ROW, t, ROW)
    le(out, COL, t, COL)
    at_least(out, COL, 3)
    if level is SpecLevel.SPEC2:
        le(out, GROUP, t, GROUP)
        le(out, NEW_VALS, t, NEW_VALS, 2)
        le(out, NEW_COLS, t, NEW_COLS, 2)


def transfer_spread(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    le(out, ROW, t, ROW)
    ge(out, COL, t, COL, -1)
    at_least(out, ROW, 1)
    if level is SpecLevel.SPEC2:
        le(out, GROUP, t, GROUP)
        le(out, NEW_VALS, t, NEW_VALS)
        le(out, NEW_COLS, t, NEW_VALS)


def transfer_separate(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    eq(out, ROW, t, ROW)
    eq(out, COL, t, COL, 1)
    if level is SpecLevel.SPEC2:
        le(out, GROUP, t, GROUP)
        ge(out, NEW_VALS, t, NEW_VALS, 2)
        le(out, NEW_COLS, t, NEW_COLS, 2)
        at_least(out, NEW_COLS, 2)


def transfer_unite(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    eq(out, ROW, t, ROW)
    eq(out, COL, t, COL, -1)
    if level is SpecLevel.SPEC2:
        le(out, GROUP, t, GROUP)
        ge(out, NEW_VALS, t, NEW_VALS, -1)
        le_sum(out, NEW_VALS, t, NEW_VALS, t, ROW, 1)
        le(out, NEW_COLS, t, NEW_COLS, 1)
        ge(out, NEW_COLS, t, NEW_COLS, -1)
        at_least(out, NEW_COLS, 1)


def transfer_select(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    eq(out, ROW, t, ROW)
    lt(out, COL, t, COL)
    if level is SpecLevel.SPEC2:
        le(out, GROUP, t, GROUP)
        le(out, NEW_VALS, t, NEW_VALS)
        le(out, NEW_COLS, t, NEW_COLS)


def transfer_filter(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    lt(out, ROW, t, ROW)
    eq(out, COL, t, COL)
    if level is SpecLevel.SPEC2:
        le(out, GROUP, t, GROUP)
        le(out, NEW_VALS, t, NEW_VALS)
        eq(out, NEW_COLS, t, NEW_COLS)


def transfer_summarise(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    le(out, ROW, t, ROW)
    le(out, COL, t, COL, 1)
    at_least(out, COL, 1)
    if level is SpecLevel.SPEC2:
        eq(out, ROW, t, GROUP)
        le(out, GROUP, t, GROUP)
        le_sum(out, NEW_VALS, t, NEW_VALS, t, GROUP, 1)
        le(out, NEW_COLS, t, NEW_COLS, 1)
        at_least(out, NEW_COLS, 1)


def transfer_group_by(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    eq(out, ROW, t, ROW)
    eq(out, COL, t, COL)
    if level is SpecLevel.SPEC2:
        at_least(out, GROUP, 1)
        le(out, GROUP, t, ROW)
        eq(out, NEW_VALS, t, NEW_VALS)
        eq(out, NEW_COLS, t, NEW_COLS)


def transfer_mutate(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    eq(out, ROW, t, ROW)
    eq(out, COL, t, COL, 1)
    if level is SpecLevel.SPEC2:
        eq(out, GROUP, t, GROUP)
        eq(out, NEW_COLS, t, NEW_COLS, 1)
        gt(out, NEW_VALS, t, NEW_VALS)
        le_sum(out, NEW_VALS, t, NEW_VALS, t, ROW, 1)


def transfer_inner_join(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    t1, t2 = ins
    # Min(r1, r2) <= out.row <= Max(r1, r2).
    ge_min(out, ROW, [(t1, ROW), (t2, ROW)])
    le_max(out, ROW, [(t1, ROW), (t2, ROW)])
    le_sum(out, COL, t1, COL, t2, COL, -1)
    ge(out, COL, t1, COL)
    ge(out, COL, t2, COL)
    if level is SpecLevel.SPEC2:
        exact(out, GROUP, 1)
        le_sum(out, NEW_COLS, t1, NEW_COLS, t2, NEW_COLS)
        le_sum(out, NEW_VALS, t1, NEW_VALS, t2, NEW_VALS)


def transfer_arrange(out: Box, ins: Sequence[Box], level: SpecLevel) -> None:
    (t,) = ins
    eq(out, ROW, t, ROW)
    eq(out, COL, t, COL)
    if level is SpecLevel.SPEC2:
        eq(out, GROUP, t, GROUP)
        eq(out, NEW_VALS, t, NEW_VALS)
        eq(out, NEW_COLS, t, NEW_COLS)


#: The compiled interpretation of every built-in specification, keyed like
#: :data:`SPECIFICATIONS` (the key sets must match; pinned by the tests).
TRANSFERS: Dict[str, TransferFunction] = {
    "gather": transfer_gather,
    "spread": transfer_spread,
    "separate": transfer_separate,
    "unite": transfer_unite,
    "select": transfer_select,
    "filter": transfer_filter,
    "summarise": transfer_summarise,
    "group_by": transfer_group_by,
    "mutate": transfer_mutate,
    "inner_join": transfer_inner_join,
    "arrange": transfer_arrange,
}
