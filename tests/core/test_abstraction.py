"""Tests for table abstraction (alpha) and the Spec 2 attributes."""

from repro.core.abstraction import (
    ExampleBaseline,
    SpecLevel,
    TableVars,
    abstract_table,
    nonnegativity,
    table_group_count,
)
from repro.dataframe import Table
from repro.smt import Solver, CheckResult


EX1_INPUT = Table(
    ["id", "year", "A", "B"],
    [[1, 2007, 5, 10], [2, 2009, 3, 50], [1, 2007, 5, 17], [2, 2009, 6, 17]],
)
EX1_OUTPUT = Table(
    ["id", "A_2007", "B_2007", "A_2009", "B_2009"],
    [[1, 5, 10, 5, 17], [2, 3, 50, 6, 17]],
)


class TestBaseline:
    def test_input_has_no_new_values(self):
        baseline = ExampleBaseline.from_tables([EX1_INPUT])
        assert baseline.new_cols(EX1_INPUT) == 0
        assert baseline.new_vals(EX1_INPUT) == 0

    def test_example13_from_the_appendix(self):
        baseline = ExampleBaseline.from_tables([EX1_INPUT])
        assert baseline.new_cols(EX1_OUTPUT) == 4
        assert baseline.new_vals(EX1_OUTPUT) == 4

    def test_spread_style_columns_are_not_new(self):
        # Column names that already occur as cell values in the input do not
        # count as new columns (see DESIGN.md).
        long = Table(["product", "store", "price"],
                     [["pen", "north", 2], ["pen", "south", 3]])
        wide = Table(["product", "north", "south"], [["pen", 2, 3]])
        baseline = ExampleBaseline.from_tables([long])
        assert baseline.new_cols(wide) == 0
        assert baseline.new_vals(wide) == 0

    def test_multiple_inputs_union(self):
        t1 = Table(["a"], [[1]])
        t2 = Table(["b"], [["x"]])
        baseline = ExampleBaseline.from_tables([t1, t2])
        probe = Table(["a", "b"], [[1, "x"]])
        assert baseline.new_vals(probe) == 0


class TestGroupCount:
    def test_ungrouped(self):
        assert table_group_count(Table(["a"], [[1], [2]])) == 1

    def test_grouped(self):
        table = Table(["g", "v"], [["a", 1], ["b", 2], ["a", 3]]).with_grouping(["g"])
        assert table_group_count(table) == 2

    def test_empty(self):
        assert table_group_count(Table.empty(["a"])) == 0


class TestAbstractTable:
    def test_spec1_only_constrains_shape(self):
        variables = TableVars("t")
        formula = abstract_table(EX1_INPUT, variables, SpecLevel.SPEC1,
                                 ExampleBaseline.from_tables([EX1_INPUT]))
        solver = Solver()
        solver.add(formula)
        assert solver.check() is CheckResult.SAT
        model = solver.model()
        assert model["t.row"] == 4
        assert model["t.col"] == 4
        assert "t.group" not in model

    def test_spec2_constrains_all_attributes(self):
        baseline = ExampleBaseline.from_tables([EX1_INPUT])
        variables = TableVars("t")
        formula = abstract_table(EX1_OUTPUT, variables, SpecLevel.SPEC2, baseline)
        solver = Solver()
        solver.add(formula)
        assert solver.check() is CheckResult.SAT
        model = solver.model()
        assert model["t.newCols"] == 4
        assert model["t.newVals"] == 4
        assert model["t.group"] == 1

    def test_symbolic_group_for_output(self):
        baseline = ExampleBaseline.from_tables([EX1_INPUT])
        variables = TableVars("y")
        formula = abstract_table(EX1_OUTPUT, variables, SpecLevel.SPEC2, baseline,
                                 symbolic_group=True)
        solver = Solver()
        solver.add(formula, variables.group.equals(2))
        assert solver.check() is CheckResult.SAT

    def test_nonnegativity_is_satisfiable(self):
        variables = [TableVars("a"), TableVars("b")]
        solver = Solver()
        solver.add(nonnegativity(variables, SpecLevel.SPEC2))
        assert solver.check() is CheckResult.SAT

    def test_attribute_equality_constraint(self):
        a, b = TableVars("a"), TableVars("b")
        solver = Solver()
        solver.add(a.equal_to(b, SpecLevel.SPEC2), a.row.equals(3), b.row.equals(4))
        assert solver.check() is CheckResult.UNSAT
