"""SMT-based deduction (Section 6, Algorithm 2 of the paper).

Given a hypothesis and the input-output example, the deduction engine builds
a Presburger-arithmetic formula combining

* the specification :math:`\\Phi(H)` of the hypothesis (Figure 12), obtained
  by conjoining the first-order specs of its components, with complete
  subterms replaced by the abstraction of their partially-evaluated value;
* :math:`\\varphi_{in}`: every unbound table hole must correspond to one of
  the input tables;
* :math:`\\varphi_{out}`: the root must correspond to the output table;
* the abstraction :math:`\\alpha` of every example table,

and checks satisfiability.  UNSAT means the hypothesis can never be completed
into a program consistent with the example and is pruned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..dataframe.table import Table
from ..engine.cache import CacheStats, LRUCache
from ..smt.solver import CheckResult, Solver
from ..smt.terms import Formula, conjoin, disjoin
from .abstraction import (
    AbstractionCache,
    ExampleBaseline,
    SpecLevel,
    TableVars,
    nonnegativity,
)
from .hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    Hypothesis,
    iter_nodes,
    partial_evaluate,
)
from .types import Type


#: Default bound of the per-engine verdict memo.
VERDICT_CACHE_SIZE = 32768


@dataclass
class DeductionStats:
    """Counters describing the work done by the deduction engine."""

    smt_calls: int = 0
    smt_time: float = 0.0
    hypotheses_checked: int = 0
    hypotheses_rejected: int = 0
    evaluation_failures: int = 0
    #: Verdict-memo accounting: a hit means an entire SMT query was skipped.
    #: (The counters are written directly by the verdict LRU cache.)
    verdict_cache: CacheStats = field(default_factory=CacheStats)
    #: Hit/miss counters of the abstraction-formula memo.
    abstraction_cache: CacheStats = field(default_factory=CacheStats)

    @property
    def cache_hits(self) -> int:
        """Deduction queries answered from the verdict memo."""
        return self.verdict_cache.hits

    @property
    def cache_misses(self) -> int:
        """Deduction queries that had to build and discharge an SMT query."""
        return self.verdict_cache.misses

    @property
    def cache_lookups(self) -> int:
        """Total number of verdict-cache probes."""
        return self.verdict_cache.lookups

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of deduction queries answered from the verdict memo."""
        return self.verdict_cache.hit_rate

    def merge(self, other: "DeductionStats") -> None:
        """Accumulate another stats object into this one."""
        self.smt_calls += other.smt_calls
        self.smt_time += other.smt_time
        self.hypotheses_checked += other.hypotheses_checked
        self.hypotheses_rejected += other.hypotheses_rejected
        self.evaluation_failures += other.evaluation_failures
        self.verdict_cache.merge(other.verdict_cache)
        self.abstraction_cache.merge(other.abstraction_cache)


@dataclass
class DeductionEngine:
    """Builds and discharges the deduction queries for one synthesis problem."""

    inputs: Sequence[Table]
    output: Table
    level: SpecLevel = SpecLevel.SPEC2
    use_partial_evaluation: bool = True
    enabled: bool = True
    stats: DeductionStats = field(default_factory=DeductionStats)

    def __post_init__(self):
        self.baseline = ExampleBaseline.from_tables(self.inputs)
        self._input_vars = [TableVars(f"x{i + 1}") for i in range(len(self.inputs))]
        self._output_vars = TableVars("y")
        #: Cross-candidate cache of subtree evaluations (see partial_evaluate).
        self.evaluation_memo: Dict = {}
        #: Cache of table attribute vectors used by the abstraction function.
        self._attribute_cache: Dict[Table, tuple] = {}
        #: LRU-bounded memo of abstraction formulas (hits/misses are surfaced
        #: through ``stats.abstraction_cache``).
        self._abstraction = AbstractionCache(stats=self.stats.abstraction_cache)
        #: Caches of formula fragments (specs, bindings) -- the same fragments
        #: are re-assembled for thousands of deduction queries.
        self._spec_cache: Dict[tuple, Formula] = {}
        self._binding_cache: Dict[tuple, Formula] = {}
        self._nonneg_cache: Dict[tuple, Formula] = {}
        #: LRU-bounded memo of deduction verdicts, keyed by the hypothesis
        #: signature plus the spec level and partial-evaluation flag.  The SMT
        #: query depends only on the hypothesis *structure* (components,
        #: bindings, which holes are filled) and on the attribute vectors of
        #: the evaluated subterms -- not on the literal hole values -- so
        #: candidates whose completions produce tables with identical
        #: abstractions share a single query.
        self._verdict_cache: "LRUCache[tuple, bool]" = LRUCache(
            maxsize=VERDICT_CACHE_SIZE, stats=self.stats.verdict_cache
        )
        self._example_formula = self._build_example_formula()

    # ------------------------------------------------------------------
    def _build_example_formula(self) -> Formula:
        constraints = []
        for table, variables in zip(self.inputs, self._input_vars):
            constraints.append(self._abstract(table, variables))
        constraints.append(
            self._abstract(self.output, self._output_vars, symbolic_group=True)
        )
        return conjoin(constraints)

    # ------------------------------------------------------------------
    def node_vars(self, node_id: int) -> TableVars:
        """The symbolic attribute vector of hypothesis node *node_id*."""
        return TableVars(f"n{node_id}")

    def table_attributes(self, table: Table) -> tuple:
        """The (row, col, group, newCols, newVals) attribute vector of a table.

        Under Spec 1 the last three attributes never reach a formula, so the
        whole-table scans they require are skipped (zeroing them also keeps
        the abstraction/verdict cache keys from splitting on unused fields).
        """
        attributes = self._attribute_cache.get(table)
        if attributes is None:
            if self.level is SpecLevel.SPEC1:
                attributes = (table.n_rows, table.n_cols, 0, 0, 0)
            else:
                attributes = (
                    table.n_rows,
                    table.n_cols,
                    table.n_groups,
                    self.baseline.new_cols(table),
                    self.baseline.new_vals(table),
                )
            self._attribute_cache[table] = attributes
        return attributes

    def _abstract(self, table: Table, variables: TableVars, symbolic_group: bool = False):
        """Cached version of :func:`abstract_table` (attribute vectors are memoised)."""
        attributes = self.table_attributes(table)
        return self._abstraction.abstract(attributes, variables, self.level, symbolic_group)

    def _component_spec(self, node: Apply) -> Formula:
        """Cached first-order specification of one application node."""
        key = (node.component.name, node.node_id, tuple(child.node_id for child in node.table_children))
        cached = self._spec_cache.get(key)
        if cached is None:
            inputs = [self.node_vars(child.node_id) for child in node.table_children]
            cached = node.component.specification(self.node_vars(node.node_id), inputs, self.level)
            self._spec_cache[key] = cached
        return cached

    def _binding(self, node_id: int, input_index: Optional[int]) -> Formula:
        """Cached phi_in constraint for one table hole."""
        key = (node_id, input_index)
        cached = self._binding_cache.get(key)
        if cached is None:
            variables = self.node_vars(node_id)
            if input_index is not None:
                cached = variables.equal_to(self._input_vars[input_index], self.level)
            else:
                cached = disjoin(
                    variables.equal_to(input_vars, self.level)
                    for input_vars in self._input_vars
                )
            self._binding_cache[key] = cached
        return cached

    def _nonnegativity(self, node_ids: tuple) -> Formula:
        """Cached sanity constraints for a set of hypothesis nodes."""
        cached = self._nonneg_cache.get(node_ids)
        if cached is None:
            variables = [self.node_vars(node_id) for node_id in node_ids]
            cached = nonnegativity(
                variables + self._input_vars + [self._output_vars], self.level
            )
            self._nonneg_cache[node_ids] = cached
        return cached

    def specification(
        self, hypothesis: Hypothesis, evaluated: Dict[int, Table]
    ) -> Formula:
        """The formula :math:`\\Phi(H)` of Figure 12."""
        constraints = []

        def walk(node: Hypothesis) -> None:
            variables = self.node_vars(node.node_id)
            if node.node_id in evaluated:
                # Complete subterm: use the abstraction of its concrete value.
                constraints.append(self._abstract(evaluated[node.node_id], variables))
                return
            if isinstance(node, Hole):
                # Unknown leaf: no information (the spec is "true").
                return
            constraints.append(self._component_spec(node))
            for child in node.table_children:
                walk(child)

        walk(hypothesis)
        return conjoin(constraints)

    def build_query(
        self, hypothesis: Hypothesis, evaluated: Dict[int, Table]
    ) -> Formula:
        """The full satisfiability query :math:`\\psi` of Algorithm 2."""
        node_ids = tuple(
            sorted(
                node.node_id
                for node in iter_nodes(hypothesis)
                if not isinstance(node, Hole) or node.hole_type is Type.TABLE
            )
        )
        constraints = [
            self.specification(hypothesis, evaluated),
            self._example_formula,
            self._nonnegativity(node_ids),
        ]

        # phi_in: every table hole corresponds to one of the input variables.
        for node in iter_nodes(hypothesis):
            if isinstance(node, Hole) and node.hole_type is Type.TABLE:
                constraints.append(self._binding(node.node_id, node.binding))

        # phi_out: the root corresponds to the output table.
        constraints.append(
            self.node_vars(hypothesis.node_id).equal_to(self._output_vars, self.level)
        )
        return conjoin(constraints)

    # ------------------------------------------------------------------
    def deduce(self, hypothesis: Hypothesis) -> bool:
        """Algorithm 2: return ``False`` when the hypothesis can be rejected."""
        self.stats.hypotheses_checked += 1
        evaluated: Dict[int, Table] = {}
        if self.use_partial_evaluation:
            try:
                evaluated = partial_evaluate(hypothesis, self.inputs, memo=self.evaluation_memo)
            except EvaluationFailure:
                self.stats.evaluation_failures += 1
                self.stats.hypotheses_rejected += 1
                return False
        if not self.enabled:
            return True

        cache_key = self._verdict_key(hypothesis, evaluated)
        cached = self._verdict_cache.get(cache_key)
        if cached is not None:
            if not cached:
                self.stats.hypotheses_rejected += 1
            return cached

        query = self.build_query(hypothesis, evaluated)
        solver = Solver()
        solver.add(query)
        started = time.perf_counter()
        result = solver.check()
        self.stats.smt_calls += 1
        self.stats.smt_time += time.perf_counter() - started
        feasible = result is not CheckResult.UNSAT
        self._verdict_cache.put(cache_key, feasible)
        if not feasible:
            self.stats.hypotheses_rejected += 1
        return feasible

    def _verdict_key(self, hypothesis: Hypothesis, evaluated: Dict[int, Table]) -> tuple:
        """A cache key capturing everything the deduction query depends on.

        The key pairs the structural hypothesis signature with the spec level
        and the partial-evaluation flag, so one memo could in principle be
        shared by engines running under different configurations.
        """
        parts = []

        def walk(node: Hypothesis) -> None:
            if node.node_id in evaluated:
                parts.append((node.node_id, "t", self.table_attributes(evaluated[node.node_id])))
                return
            if isinstance(node, Hole):
                if node.hole_type is Type.TABLE:
                    parts.append((node.node_id, "x", node.binding))
                return
            parts.append((node.node_id, "c", node.component.name))
            for child in node.table_children:
                walk(child)

        walk(hypothesis)
        return (self.level, self.use_partial_evaluation, tuple(parts))

    # ------------------------------------------------------------------
    def evaluate_if_possible(self, hypothesis: Hypothesis) -> Optional[Dict[int, Table]]:
        """Partially evaluate, returning ``None`` when a complete subterm fails."""
        try:
            return partial_evaluate(hypothesis, self.inputs, memo=self.evaluation_memo)
        except EvaluationFailure:
            return None
