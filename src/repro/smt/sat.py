"""A small conflict-driven SAT solver.

The propositional engine behind the lazy DPLL(T) loop: DPLL search with unit
propagation, first-UIP clause learning and non-chronological backjumping.
The instances produced by the deduction engine are tiny (the boolean
structure of a hypothesis specification is a handful of disjunctions), so the
solver favours clarity over the constant-factor tricks of industrial solvers:
propagation scans clause counters rather than maintaining watched literals.

The solver is incremental in the MiniSat style: the clause database (and the
clauses learned during earlier calls) persists across :meth:`solve` calls,
and :meth:`solve` accepts *assumption* literals that are asserted as
retractable pseudo-decisions.  When the instance is unsatisfiable under
assumptions, :attr:`core` holds the final conflict set -- the subset of the
assumptions that the refutation actually used.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class SatSolver:
    """CDCL-style SAT solver over clauses of non-zero integer literals."""

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]]) -> None:
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        #: assignment[var] is True/False/None
        self.assignment: List[Optional[bool]] = [None] * (num_vars + 1)
        #: decision level at which each variable was assigned
        self.level: List[int] = [0] * (num_vars + 1)
        #: index into self.clauses of the clause that implied the assignment
        #: (None for decisions)
        self.reason: List[Optional[int]] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.decision_level = 0
        self._empty_clause = False
        #: After an UNSAT :meth:`solve` call: the subset of the assumption
        #: literals involved in the refutation (empty when the clause set is
        #: unsatisfiable on its own).
        self.core: List[int] = []
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def add_clause(self, clause: Sequence[int]) -> None:
        """Add a clause.  May be called between :meth:`solve` invocations."""
        literals = sorted(set(clause), key=abs)
        if not literals:
            self._empty_clause = True
            return
        for literal in literals:
            if abs(literal) > self.num_vars:
                self._grow(abs(literal))
        self.clauses.append(list(literals))

    def _grow(self, new_num_vars: int) -> None:
        extra = new_num_vars - self.num_vars
        self.assignment.extend([None] * extra)
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.num_vars = new_num_vars

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        value = self.assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _assign(self, literal: int, reason: Optional[int]) -> None:
        variable = abs(literal)
        self.assignment[variable] = literal > 0
        self.level[variable] = self.decision_level
        self.reason[variable] = reason
        self.trail.append(literal)

    def _unassign_to(self, trail_length: int) -> None:
        while len(self.trail) > trail_length:
            literal = self.trail.pop()
            self.assignment[abs(literal)] = None

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Propagate units; return the index of a conflicting clause or ``None``."""
        changed = True
        while changed:
            changed = False
            for index, clause in enumerate(self.clauses):
                unassigned: Optional[int] = None
                satisfied = False
                unassigned_count = 0
                for literal in clause:
                    value = self._value(literal)
                    if value is True:
                        satisfied = True
                        break
                    if value is None:
                        unassigned_count += 1
                        unassigned = literal
                if satisfied:
                    continue
                if unassigned_count == 0:
                    return index
                if unassigned_count == 1:
                    self._assign(unassigned, index)
                    changed = True
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict_index: int) -> (List[int], int):
        if self.decision_level == 0:
            return [], -1

        learned: Dict[int, bool] = {}
        seen = set()
        counter = 0
        clause = list(self.clauses[conflict_index])
        trail_index = len(self.trail) - 1
        uip_literal: Optional[int] = None

        while True:
            for literal in clause:
                variable = abs(literal)
                if variable in seen or self.level[variable] == 0:
                    continue
                seen.add(variable)
                if self.level[variable] == self.decision_level:
                    counter += 1
                else:
                    learned[literal] = True

            # Find the next trail literal (at the current level) to resolve on.
            while True:
                literal = self.trail[trail_index]
                trail_index -= 1
                if abs(literal) in seen:
                    break
            counter -= 1
            if counter == 0:
                uip_literal = literal
                break
            reason_index = self.reason[abs(literal)]
            clause = [l for l in self.clauses[reason_index] if l != literal]

        learned_clause = [-uip_literal] + list(learned.keys())
        if len(learned_clause) == 1:
            backjump_level = 0
        else:
            backjump_level = max(self.level[abs(literal)] for literal in learned)
        return learned_clause, backjump_level

    def _backjump(self, level: int) -> None:
        cutoff = 0
        for index, literal in enumerate(self.trail):
            if self.level[abs(literal)] > level:
                cutoff = index
                break
        else:
            cutoff = len(self.trail)
        self._unassign_to(cutoff)
        self.decision_level = level

    # ------------------------------------------------------------------
    # Final-conflict analysis (the unsat core over the assumptions)
    # ------------------------------------------------------------------
    def _analyze_final(self, literal: int) -> List[int]:
        """The assumption subset responsible for *literal* being false.

        Called when re-asserting assumption *literal* finds it already
        falsified.  Walking the trail top-down and expanding implied
        variables through their reason clauses reaches exactly the
        pseudo-decisions (earlier assumptions) the refutation rests on --
        MiniSat's ``analyzeFinal``.
        """
        core = [literal]
        seen = {abs(literal)}
        for trail_literal in reversed(self.trail):
            variable = abs(trail_literal)
            if variable not in seen or self.level[variable] == 0:
                continue
            reason_index = self.reason[variable]
            if reason_index is None:
                # A decision above level 0 during assumption placement is an
                # earlier assumption.
                core.append(trail_literal)
            else:
                for other in self.clauses[reason_index]:
                    if abs(other) != variable:
                        seen.add(abs(other))
        return core

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _pick_branch_literal(self) -> Optional[int]:
        for variable in range(1, self.num_vars + 1):
            if self.assignment[variable] is None:
                return variable
        return None

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
        """Return a satisfying assignment ``{var: bool}`` or ``None`` if UNSAT.

        *assumptions* are literals asserted as retractable pseudo-decisions
        (one per decision level, below every free decision).  They do not
        become part of the clause database: a later call with different
        assumptions sees the same clauses (plus anything learned).  When the
        result is ``None``, :attr:`core` holds the final conflict set -- the
        subset of the assumptions used by the refutation (empty if the clause
        set is unsatisfiable by itself).
        """
        assumptions = list(assumptions)
        self.core = []
        if self._empty_clause:
            return None
        for literal in assumptions:
            if abs(literal) > self.num_vars:
                self._grow(abs(literal))
        # Reset any state left over from a previous call.
        self._unassign_to(0)
        self.decision_level = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                if self.decision_level == 0:
                    return None
                learned_clause, backjump_level = self._analyze(conflict)
                if backjump_level < 0:
                    return None
                self.add_clause(learned_clause)
                self._backjump(backjump_level)
                continue
            # Place the next pending assumption (if any) before branching.
            while self.decision_level < len(assumptions):
                literal = assumptions[self.decision_level]
                value = self._value(literal)
                if value is True:
                    # Already implied: open an empty level so that
                    # assumptions[i] stays aligned with decision level i+1.
                    self.decision_level += 1
                    continue
                if value is False:
                    self.core = self._analyze_final(literal)
                    return None
                self.decision_level += 1
                self._assign(literal, None)
                break
            else:
                literal = self._pick_branch_literal()
                if literal is None:
                    return {
                        variable: bool(self.assignment[variable])
                        for variable in range(1, self.num_vars + 1)
                    }
                self.decision_level += 1
                self._assign(literal, None)
