"""The Morpheus synthesis engine (the paper's primary contribution).

Public entry points:

* :func:`repro.core.synthesize` / :class:`repro.core.Morpheus` -- synthesize a
  table transformation program from an input-output example.
* :class:`repro.core.SynthesisConfig` -- ablation knobs (deduction, Spec 1 vs
  Spec 2, partial evaluation, cost model).
* :func:`repro.core.standard_library` -- the tidyr/dplyr component set.
"""

from .abstraction import ExampleBaseline, SpecLevel, TableVars, abstract_table
from .arguments import (
    Aggregation,
    ColumnList,
    ColumnRef,
    Constant,
    MutationExpr,
    Predicate,
    ValueArgument,
)
from .component import Component, ComponentLibrary, ValueParam
from .cost import CostModel, NGramModel, UniformCostModel, default_ngram_model
from .deduction import DeductionEngine, DeductionStats
from .frontier import Frontier, SearchKernel, SnapshotError, SnapshotVersionError
from .hypothesis import (
    Apply,
    Hole,
    Hypothesis,
    component_sequence,
    evaluate,
    hypothesis_size,
    initial_hypothesis,
    is_complete,
    is_sketch,
    partial_evaluate,
    refine,
    render_program,
    sketches,
)
from .inhabitation import enumerate_arguments
from .library import sql_library, standard_library
from .oe import OEStore
from .propagation import ground_check, prescreen_infeasible
from .specs import SPECIFICATIONS, TRANSFERS
from .synthesizer import (
    Example,
    Morpheus,
    SynthesisConfig,
    SynthesisResult,
    SynthesisStats,
    synthesize,
)
from .types import Type

__all__ = [
    "Aggregation",
    "Apply",
    "ColumnList",
    "ColumnRef",
    "Component",
    "ComponentLibrary",
    "Constant",
    "CostModel",
    "DeductionEngine",
    "DeductionStats",
    "Example",
    "ExampleBaseline",
    "Frontier",
    "Hole",
    "Hypothesis",
    "Morpheus",
    "MutationExpr",
    "NGramModel",
    "OEStore",
    "Predicate",
    "SearchKernel",
    "SnapshotError",
    "SnapshotVersionError",
    "SPECIFICATIONS",
    "SpecLevel",
    "TRANSFERS",
    "SynthesisConfig",
    "SynthesisResult",
    "SynthesisStats",
    "TableVars",
    "Type",
    "UniformCostModel",
    "ValueArgument",
    "ValueParam",
    "abstract_table",
    "component_sequence",
    "default_ngram_model",
    "enumerate_arguments",
    "evaluate",
    "ground_check",
    "hypothesis_size",
    "initial_hypothesis",
    "is_complete",
    "is_sketch",
    "partial_evaluate",
    "prescreen_infeasible",
    "refine",
    "render_program",
    "sketches",
    "sql_library",
    "standard_library",
    "synthesize",
    "Type",
]
