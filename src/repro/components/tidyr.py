"""Re-implementation of the four tidyr verbs used by Morpheus.

``gather``, ``spread``, ``separate`` and ``unite`` reshape a data frame
between its "wide" and "long" representations.  The semantics follow tidyr
closely enough for the synthesis benchmarks: the executor is what candidate
programs are run on, and the specs in :mod:`repro.core.specs` only need to
over-approximate it.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from ..dataframe.cells import CellType, CellValue, format_value, value_sort_key
from ..dataframe.table import Table
from .errors import EvaluationError, InvalidArgumentError

#: Separator used by ``unite`` and (by default) by ``separate``.
DEFAULT_SEPARATOR = "_"

_SEPARATE_PATTERN = re.compile(r"[^0-9A-Za-z.]+")


def _check_columns_exist(table: Table, columns: Sequence[str], verb: str) -> None:
    for name in columns:
        if not table.has_column(name):
            raise InvalidArgumentError(f"{verb}: column {name!r} not in table {list(table.columns)}")


def gather(table: Table, key: str, value: str, columns: Sequence[str]) -> Table:
    """Collapse *columns* into key/value pairs (wide to long).

    Every remaining column is duplicated for each gathered column, the *key*
    column holds the gathered column's name and the *value* column holds the
    cell value.
    """
    columns = list(columns)
    if len(columns) < 2:
        raise InvalidArgumentError("gather: must gather at least two columns")
    _check_columns_exist(table, columns, "gather")
    if len(columns) >= table.n_cols:
        raise EvaluationError("gather: cannot gather every column of the table")
    id_columns = [name for name in table.columns if name not in set(columns)]
    if key in id_columns or value in id_columns or key == value:
        raise InvalidArgumentError("gather: key/value names collide with remaining columns")

    gathered_types = {table.column_type(name) for name in columns}
    value_type = CellType.NUM if gathered_types == {CellType.NUM} else CellType.STR

    id_indices = [table.column_index(name) for name in id_columns]
    out_rows: List[Tuple[CellValue, ...]] = []
    for gathered in columns:
        gathered_index = table.column_index(gathered)
        for row in table.rows:
            cell = row[gathered_index]
            if value_type is CellType.STR and cell is not None:
                cell = format_value(cell)
            out_rows.append(tuple(row[index] for index in id_indices) + (gathered, cell))

    out_columns = id_columns + [key, value]
    out_types = [table.column_type(name) for name in id_columns] + [CellType.STR, value_type]
    return Table(out_columns, out_rows, out_types)


def spread(table: Table, key: str, value: str) -> Table:
    """Spread a key/value pair across multiple columns (long to wide)."""
    if key == value:
        raise InvalidArgumentError("spread: key and value must be different columns")
    _check_columns_exist(table, [key, value], "spread")

    id_columns = [name for name in table.columns if name not in (key, value)]
    if not id_columns:
        raise EvaluationError("spread: no identifier columns remain")
    id_indices = [table.column_index(name) for name in id_columns]
    key_index = table.column_index(key)
    value_index = table.column_index(value)

    # New columns are the distinct key values, in sorted order (like tidyr).
    key_values: List[CellValue] = []
    for row in table.rows:
        if row[key_index] is None:
            raise EvaluationError("spread: key column contains a missing value")
        if row[key_index] not in key_values:
            key_values.append(row[key_index])
    key_values.sort(key=value_sort_key)
    new_columns = [format_value(key_value) for key_value in key_values]
    if len(set(new_columns)) != len(new_columns):
        raise EvaluationError("spread: key values collide after formatting")
    for name in new_columns:
        if name in id_columns:
            raise EvaluationError(f"spread: new column {name!r} collides with an existing column")

    groups: List[Tuple[CellValue, ...]] = []
    cells = {}
    for row in table.rows:
        group_key = tuple(row[index] for index in id_indices)
        if group_key not in cells:
            groups.append(group_key)
            cells[group_key] = {}
        column_name = format_value(row[key_index])
        if column_name in cells[group_key]:
            raise EvaluationError("spread: duplicate identifiers for rows")
        cells[group_key][column_name] = row[value_index]

    out_rows = []
    for group_key in groups:
        out_rows.append(group_key + tuple(cells[group_key].get(name) for name in new_columns))

    out_columns = id_columns + new_columns
    return Table(out_columns, out_rows)


def separate(
    table: Table,
    column: str,
    into: Sequence[str],
    separator: Optional[str] = None,
) -> Table:
    """Split one (string) column into two columns.

    By default the split happens at the first run of non-alphanumeric
    characters, mirroring tidyr's default separator.
    """
    _check_columns_exist(table, [column], "separate")
    into = list(into)
    if len(into) != 2:
        raise InvalidArgumentError("separate: exactly two target column names are supported")
    if len(set(into)) != len(into):
        raise InvalidArgumentError("separate: target column names must be distinct")
    for name in into:
        if name != column and table.has_column(name):
            raise EvaluationError(f"separate: column {name!r} already exists")

    column_index = table.column_index(column)
    left_values: List[CellValue] = []
    right_values: List[CellValue] = []
    for row in table.rows:
        cell = row[column_index]
        if cell is None:
            left_values.append(None)
            right_values.append(None)
            continue
        text = format_value(cell)
        if separator is not None:
            parts = text.split(separator, 1)
        else:
            parts = _SEPARATE_PATTERN.split(text, maxsplit=1)
        if len(parts) != 2 or not parts[0] or not parts[1]:
            raise EvaluationError(f"separate: value {text!r} cannot be split into two pieces")
        left_values.append(parts[0])
        right_values.append(parts[1])

    out_columns = []
    out_rows_columns = []
    for name in table.columns:
        if name == column:
            out_columns.extend(into)
            out_rows_columns.append(left_values)
            out_rows_columns.append(right_values)
        else:
            out_columns.append(name)
            out_rows_columns.append(list(table.column_values(name)))

    out_rows = list(zip(*out_rows_columns)) if out_rows_columns else []
    return Table(out_columns, out_rows)


def unite(
    table: Table,
    new_column: str,
    columns: Sequence[str],
    separator: str = DEFAULT_SEPARATOR,
) -> Table:
    """Paste several columns into one, separated by ``separator``."""
    columns = list(columns)
    if len(columns) < 2:
        raise InvalidArgumentError("unite: need at least two columns to unite")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("unite: columns to unite must be distinct")
    _check_columns_exist(table, columns, "unite")
    if table.has_column(new_column) and new_column not in columns:
        raise EvaluationError(f"unite: column {new_column!r} already exists")

    column_indices = [table.column_index(name) for name in columns]
    united_values = []
    for row in table.rows:
        pieces = [format_value(row[index]) for index in column_indices]
        united_values.append(separator.join(pieces))

    first_position = min(table.column_index(name) for name in columns)
    out_columns: List[str] = []
    out_columns_values: List[List[CellValue]] = []
    inserted = False
    for position, name in enumerate(table.columns):
        if name in columns:
            if position == first_position and not inserted:
                out_columns.append(new_column)
                out_columns_values.append(united_values)
                inserted = True
            continue
        out_columns.append(name)
        out_columns_values.append(list(table.column_values(name)))
    if not inserted:
        out_columns.insert(0, new_column)
        out_columns_values.insert(0, united_values)

    out_rows = list(zip(*out_columns_values)) if out_columns_values else []
    return Table(out_columns, out_rows)
