"""Table-driven type inhabitation (Section 7, Figure 13 of the paper).

Sketch completion needs, for every first-order hole, the set of well-typed
terms that can fill it.  Following the paper, the universe of constants is
*finitized by the concrete table* the hole's enclosing component operates on:

* the *Cols* rule enumerates combinations of the table's column names;
* the *Const* rule draws literal constants from the table's cells;
* the *Var*/*App*/*Lambda* rules assemble predicates (``row -> bool``) and
  arithmetic expressions from the value transformers :math:`\\Lambda_v`.

The functions below enumerate the normal forms of those terms for each
argument kind of the built-in component library.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence

from ..components.values import COLUMN_AGGREGATORS
from ..dataframe.cells import CellType
from ..dataframe.table import Table
from .arguments import (
    Aggregation,
    ColumnList,
    ColumnRef,
    Constant,
    MutationExpr,
    Predicate,
    ValueArgument,
)
from .component import Component, ValueParam
from .types import Type

#: Comparison operators applicable to numeric columns.
NUMERIC_COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")

#: Comparison operators applicable to string columns.
STRING_COMPARISONS = ("==", "!=")

#: Arithmetic operators used in mutate expressions.
MUTATION_OPERATORS = ("+", "-", "*", "/")

#: Aggregates considered on the right-hand side of a mutate expression.
#: (``sum`` covers the within-group proportion idiom ``x / sum(x)``; ``max``
#: covers normalisation against a maximum.)
MUTATION_AGGREGATES = ("sum", "max")

#: Safety cap on the number of inhabitants enumerated for a single hole.
MAX_INHABITANTS = 2000


def column_subsets(names: Sequence[str], min_size: int, max_size: int) -> Iterator[ColumnList]:
    """All subsets of *names* with sizes in ``[min_size, max_size]`` (Cols rule)."""
    for size in range(min_size, max_size + 1):
        for subset in itertools.combinations(names, size):
            yield ColumnList(subset)


def column_pairs(names: Sequence[str]) -> Iterator[ColumnList]:
    """All ordered pairs of distinct columns."""
    for pair in itertools.permutations(names, 2):
        yield ColumnList(pair)


def numeric_columns(table: Table) -> List[str]:
    """Columns of numeric type."""
    return [name for name in table.columns if table.column_type(name) is CellType.NUM]


def string_columns(table: Table) -> List[str]:
    """Columns of string type."""
    return [name for name in table.columns if table.column_type(name) is CellType.STR]


def column_constants(table: Table, name: str) -> List[Constant]:
    """Distinct constants occurring in a column (the Const rule)."""
    seen = set()
    constants = []
    for value in table.column_values(name):
        if value is None:
            continue
        key = repr(value)
        if key in seen:
            continue
        seen.add(key)
        constants.append(Constant(value))
    return constants


# ----------------------------------------------------------------------
# Per-kind enumerations
# ----------------------------------------------------------------------
def predicates(table: Table) -> Iterator[Predicate]:
    """All predicates ``column <op> constant`` over the table (Lambda/App/Const)."""
    for name in table.columns:
        constants = column_constants(table, name)
        operators = (
            NUMERIC_COMPARISONS
            if table.column_type(name) is CellType.NUM
            else STRING_COMPARISONS
        )
        for operator in operators:
            for constant in constants:
                yield Predicate(name, operator, constant)


def aggregations(table: Table) -> Iterator[Aggregation]:
    """All aggregations usable by ``summarise`` on the table."""
    yield Aggregation("n")
    for function in COLUMN_AGGREGATORS:
        if function == "n_distinct":
            targets = list(table.columns)
        else:
            targets = numeric_columns(table)
        for name in targets:
            yield Aggregation(function, name)


def mutations(table: Table) -> Iterator[MutationExpr]:
    """All mutate expressions over the table's numeric columns."""
    numbers = numeric_columns(table)
    for operator in MUTATION_OPERATORS:
        for left, right in itertools.permutations(numbers, 2):
            yield MutationExpr(operator, left, right_column=right)
        for left in numbers:
            for aggregate in MUTATION_AGGREGATES:
                for target in numbers:
                    yield MutationExpr(
                        operator, left, right_aggregate=Aggregation(aggregate, target)
                    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def _checked(iterator: Iterable, deadline_check) -> Iterator:
    """Invoke *deadline_check* before producing each item of *iterator*.

    The check runs inside the enumeration itself (not just at each consumer
    pull), so a hole with a huge argument space -- ``mutations`` over many
    numeric columns, predicates over a high-cardinality column -- cannot run
    past the per-task deadline between two candidate fillings.
    """
    for item in iterator:
        deadline_check()
        yield item


def enumerate_arguments(
    component: Component, param: ValueParam, table: Table,
    deadline_check=None,
) -> Iterable[ValueArgument]:
    """Inhabitants of *param* with respect to the concrete *table*.

    The component name determines which fragment of the type's inhabitants is
    meaningful (e.g. ``gather`` needs at least two columns and must leave one
    identifier column behind).  *deadline_check* is an optional callable
    raising when the caller's time budget has expired; it is consulted for
    every enumerated argument.
    """
    names = list(table.columns)
    count = len(names)

    if param.param_type is Type.COLS:
        if component.name == "gather":
            iterator: Iterable[ValueArgument] = column_subsets(names, 2, max(count - 1, 0))
        elif component.name == "unite":
            iterator = column_pairs(names)
        elif component.name == "arrange":
            iterator = itertools.chain(
                column_subsets(names, 1, 1), column_pairs(names)
            )
        elif component.name == "group_by":
            iterator = column_subsets(names, 1, max(count - 1, 1))
        else:  # select and any user-defined projection-like component
            iterator = column_subsets(names, 1, max(count - 1, 0))
    elif param.param_type is Type.COL:
        if component.name == "separate":
            iterator = (ColumnRef(name) for name in string_columns(table))
        else:
            iterator = (ColumnRef(name) for name in names)
    elif param.param_type is Type.PREDICATE:
        iterator = predicates(table)
    elif param.param_type is Type.AGGREGATION:
        iterator = aggregations(table)
    elif param.param_type is Type.MUTATION:
        iterator = mutations(table)
    else:  # pragma: no cover - defensive
        raise ValueError(f"cannot enumerate arguments of type {param.param_type}")

    if deadline_check is not None:
        iterator = _checked(iterator, deadline_check)
    return itertools.islice(iterator, MAX_INHABITANTS)
