"""Process-wide counters for the concrete-execution side of the search.

The deduction stack already reports its work through
:class:`~repro.engine.cache.CacheStats`; this module gives the *concrete*
side -- table construction, value interning, fingerprinting, component
execution and output comparison -- the same treatment.  A single
process-wide :class:`ExecutionStats` instance accumulates counters; callers
that need a per-run slice snapshot it before the run and diff afterwards
(the same ``snapshot()``/``since()`` discipline the SMT formula cache uses).

All counters except the ``*_time`` fields are deterministic for a fixed
synthesis problem, provided the intern pool is cleared between problems
(see :func:`reset_execution_state`), so the benchmark harness can compare
them byte-for-byte between serial and ``--jobs N`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..engine.cache import CacheStats


@dataclass
class ExecutionStats:
    """Counters describing concrete-execution work (tables, cells, compares)."""

    #: Tables constructed (validating and shared-vector constructors alike).
    tables_built: int = 0
    #: Cell values deduplicated against the intern pool (pool hits).
    cells_interned: int = 0
    #: ``Table.fingerprint()`` calls answered from the per-table memo.
    fingerprint_hits: int = 0
    #: ``Table.fingerprint()`` calls that had to hash the table.
    fingerprint_misses: int = 0
    #: Table comparisons decided by a digest precheck (no cell-by-cell walk).
    compare_fastpath_hits: int = 0
    #: Shape-compatible comparisons that fell back to the tolerant slow path.
    compare_fastpath_misses: int = 0
    #: Hit/miss accounting of the fingerprint-keyed component-execution memo.
    exec_cache: CacheStats = field(default_factory=CacheStats)
    #: Wall-clock seconds spent executing components on concrete tables.
    exec_time: float = 0.0
    #: Wall-clock seconds spent comparing candidate outputs to the example.
    compare_time: float = 0.0
    #: :attr:`exec_time` split per component name (``--profile``'s per-verb
    #: block; the sum over verbs equals ``exec_time`` up to timer noise).
    verb_time: Dict[str, float] = field(default_factory=dict)

    def charge_execution(self, verb: str, elapsed: float) -> None:
        """Attribute *elapsed* seconds of concrete execution to *verb*."""
        self.exec_time += elapsed
        self.verb_time[verb] = self.verb_time.get(verb, 0.0) + elapsed

    @property
    def fingerprint_lookups(self) -> int:
        """Total number of ``fingerprint()`` calls."""
        return self.fingerprint_hits + self.fingerprint_misses

    @property
    def exec_cache_hits(self) -> int:
        """Component executions answered from the fingerprint-keyed memo."""
        return self.exec_cache.hits

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats object into this one."""
        self.tables_built += other.tables_built
        self.cells_interned += other.cells_interned
        self.fingerprint_hits += other.fingerprint_hits
        self.fingerprint_misses += other.fingerprint_misses
        self.compare_fastpath_hits += other.compare_fastpath_hits
        self.compare_fastpath_misses += other.compare_fastpath_misses
        self.exec_cache.merge(other.exec_cache)
        self.exec_time += other.exec_time
        self.compare_time += other.compare_time
        for verb, elapsed in other.verb_time.items():
            self.verb_time[verb] = self.verb_time.get(verb, 0.0) + elapsed

    def snapshot(self) -> "ExecutionStats":
        """An independent copy (for per-run slicing)."""
        copy = ExecutionStats(
            self.tables_built,
            self.cells_interned,
            self.fingerprint_hits,
            self.fingerprint_misses,
            self.compare_fastpath_hits,
            self.compare_fastpath_misses,
            self.exec_cache.snapshot(),
            self.exec_time,
            self.compare_time,
            dict(self.verb_time),
        )
        return copy

    def since(self, baseline: "ExecutionStats") -> "ExecutionStats":
        """The delta between this snapshot and an earlier *baseline*."""
        return ExecutionStats(
            self.tables_built - baseline.tables_built,
            self.cells_interned - baseline.cells_interned,
            self.fingerprint_hits - baseline.fingerprint_hits,
            self.fingerprint_misses - baseline.fingerprint_misses,
            self.compare_fastpath_hits - baseline.compare_fastpath_hits,
            self.compare_fastpath_misses - baseline.compare_fastpath_misses,
            self.exec_cache.since(baseline.exec_cache),
            self.exec_time - baseline.exec_time,
            self.compare_time - baseline.compare_time,
            {
                verb: elapsed - baseline.verb_time.get(verb, 0.0)
                for verb, elapsed in self.verb_time.items()
            },
        )

    def clear(self) -> None:
        """Reset every counter to zero."""
        self.tables_built = 0
        self.cells_interned = 0
        self.fingerprint_hits = 0
        self.fingerprint_misses = 0
        self.compare_fastpath_hits = 0
        self.compare_fastpath_misses = 0
        self.exec_cache.clear()
        self.exec_time = 0.0
        self.compare_time = 0.0
        self.verb_time.clear()


#: The process-wide counter instance (sliced per run via snapshot/since).
_EXECUTION_STATS = ExecutionStats()


def execution_stats() -> ExecutionStats:
    """The process-wide execution counters."""
    return _EXECUTION_STATS


def install_execution_stats(stats: ExecutionStats) -> ExecutionStats:
    """Swap the process-wide counter instance, returning the previous one.

    Used by :class:`repro.engine.context.TaskContext` to give each
    interleaved search kernel its own counter block, so per-task counters
    are independent of which other kernels share the process.
    """
    global _EXECUTION_STATS
    previous = _EXECUTION_STATS
    _EXECUTION_STATS = stats
    return previous


def reset_execution_state() -> None:
    """Zero the counters and clear the value intern pool.

    The benchmark runner calls this before each task (next to
    ``clear_formula_cache``) so per-task counters do not depend on what ran
    earlier in the same process -- the property that keeps serial and
    ``--jobs N`` harness runs byte-identical.
    """
    from .interning import clear_intern_pool

    _EXECUTION_STATS.clear()
    clear_intern_pool()
