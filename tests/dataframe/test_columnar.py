"""Tests for the columnar backend: interning, sharing, fingerprints, memos."""

import subprocess
import sys
from pathlib import Path

from repro.dataframe import Table
from repro.dataframe.interning import clear_intern_pool, intern_pool_size
from repro.dataframe.profiling import execution_stats, reset_execution_state


class TestInterning:
    def test_equal_cells_share_one_object(self):
        clear_intern_pool()
        left = Table(["a"], [["shared-string"]])
        right = Table(["a"], [["shared-" + "string"]])
        assert left.cell(0, "a") is right.cell(0, "a")

    def test_interning_is_counted(self):
        reset_execution_state()
        Table(["a"], [["v"], ["v"], ["v"]])
        assert execution_stats().cells_interned == 2

    def test_pool_clears(self):
        Table(["a"], [["x"]])
        assert intern_pool_size() > 0
        clear_intern_pool()
        assert intern_pool_size() == 0


class TestCopyOnWriteSharing:
    def test_select_shares_vectors(self):
        table = Table(["a", "b"], [[1, "x"], [2, "y"]])
        projected = table.select_columns(["b"])
        assert projected.column_values("b") is table.column_values("b")

    def test_grouping_shares_vectors(self):
        table = Table(["a", "b"], [[1, "x"], [2, "y"]])
        grouped = table.with_grouping(["a"])
        assert grouped.column_values("a") is table.column_values("a")
        assert grouped.ungrouped().column_values("b") is table.column_values("b")

    def test_rename_shares_vectors(self):
        table = Table(["a", "b"], [[1, "x"]])
        renamed = table.rename_column("a", "z")
        assert renamed.column_values("z") is table.column_values("a")

    def test_with_column_shares_existing_vectors(self):
        table = Table(["a"], [[1], [2]])
        extended = table.with_column("b", ["x", "y"])
        assert extended.column_values("a") is table.column_values("a")

    def test_take_rows_preserves_types(self):
        table = Table(["a"], [[1.5], [2.5], [3.5]])
        sliced = table.take_rows([2, 0])
        assert sliced.col_types == table.col_types
        assert sliced.column_values("a") == (3.5, 1.5)

    def test_from_vectors_matches_row_major_constructor(self):
        columnar = Table.from_vectors(["a", "b"], [[1, 2.0], ["x", "y"]])
        row_major = Table(["a", "b"], [[1, "x"], [2.0, "y"]])
        assert columnar == row_major
        assert columnar.col_types == row_major.col_types


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        left = Table(["a", "b"], [[1, "x"], [2, "y"]])
        right = Table(["a", "b"], [[1, "x"], [2, "y"]])
        assert left.fingerprint() == right.fingerprint()

    def test_number_formatting_is_canonical(self):
        assert Table(["a"], [[5]]).fingerprint() == Table(["a"], [[5.0]]).fingerprint()

    def test_cell_content_changes_fingerprint(self):
        assert Table(["a"], [[1]]).fingerprint() != Table(["a"], [[2]]).fingerprint()

    def test_grouping_changes_fingerprint(self):
        plain = Table(["a"], [["x"]])
        assert plain.fingerprint() != plain.with_grouping(["a"]).fingerprint()

    def test_row_order_changes_fingerprint_but_not_multiset_digest(self):
        forward = Table(["a"], [[1], [2]])
        backward = Table(["a"], [[2], [1]])
        assert forward.fingerprint() != backward.fingerprint()
        assert forward.row_multiset_digest() == backward.row_multiset_digest()

    def test_string_and_number_cells_are_distinguished(self):
        assert Table(["a"], [["5"]]).fingerprint() != Table(["a"], [[5]]).fingerprint()

    def test_fingerprint_is_memoised(self):
        reset_execution_state()
        table = Table(["a"], [[1]])
        table.fingerprint()
        misses = execution_stats().fingerprint_misses
        table.fingerprint()
        assert execution_stats().fingerprint_misses == misses
        assert execution_stats().fingerprint_hits >= 1

    def test_fingerprint_is_stable_across_processes(self):
        # --jobs N determinism rests on content-derived digests, so the
        # fingerprint must not depend on PYTHONHASHSEED.
        script = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.dataframe import Table;"
            "print(Table(['a','b'],[[1,'x'],[2.5,'y']],"
            "group_cols=['a']).fingerprint().hex())"
        )
        digests = set()
        for seed in ("0", "1", "random"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd=str(Path(__file__).resolve().parents[2]),
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1


class TestMemoisedAttributes:
    def test_spec2_attributes_computed_once(self):
        table = Table(["g", "v"], [["a", 1], ["b", 2], ["a", 3]]).with_grouping(["g"])
        assert table.n_groups == 2
        assert table.n_groups == 2  # second read served from the memo
        assert table.header_set() is table.header_set()
        assert table.value_set() is table.value_set()

    def test_rows_view_is_lazy_and_memoised(self):
        table = Table(["a", "b"], [[1, "x"], [2, "y"]])
        assert table.rows is table.rows
        assert table.rows == ((1, "x"), (2, "y"))
