"""Sketch completion (Section 7, Figure 14 of the paper).

Completion takes a sketch (a hypothesis whose table holes are all bound to
input variables) and enumerates complete programs.  The completion is
*bottom-up*: the table arguments of a component are completed (and therefore
concretely evaluated) before its first-order arguments are enumerated, so the
universe of column names and constants for each hole is the concrete table
produced by partial evaluation.  After every single hole is filled the
deduction engine re-checks the partially filled sketch, which is where most
of the pruning reported in the paper happens.

The original FILLSKETCH was a recursive generator; its enumeration state
lived in the Python call stack, which made it impossible to pause, resume,
or interleave fairly with other work.  It is now an explicit worklist
(:class:`CompletionRun`): each frame is one partial program plus its
position in the bottom-up completion order, :meth:`CompletionRun.step`
advances the search by exactly one frame (one candidate hole filling, one
deduction query), and the frame stack is popped LIFO so programs are still
produced in *exactly* the order the recursion produced them.

Frames that reach a node boundary are offered to an optional
observational-equivalence store (:mod:`repro.core.oe`): two partial programs
whose completed subtrees evaluate to fingerprint-identical tables collapse
to the first-explored representative, skipping the duplicated completion
work behind the copy.  Merging never changes which program is found first
(see the OE module docstring for the argument).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..dataframe.table import Table
from .deduction import DeductionEngine
from .hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    Hypothesis,
    fill_value_hole,
    is_complete,
    partial_evaluate,
    unfilled_value_holes,
)
from .inhabitation import enumerate_arguments
from .oe import OEStore


class CompletionTimeout(Exception):
    """Raised when the per-task deadline expires during sketch completion."""


#: How many sibling fillings of one hole are pre-executed as a group.  Each
#: batch shares the per-table setup of its component (see
#: :meth:`~repro.core.deduction.DeductionEngine.batch_evaluate_fills`); the
#: results land in the execution cache, so at most ``SIBLING_BATCH - 1``
#: executions are wasted when the search stops mid-group.
SIBLING_BATCH = 8


class CompletionBudgetExceeded(Exception):
    """Raised when one sketch has used up its completion budget.

    The budget bounds how many candidate hole fillings a single sketch may
    try, so that one unpromising sketch with a huge argument space cannot
    monopolise the search (the paper's implementation side-steps the same
    issue by running one search thread per program size).
    """


@dataclass
class CompletionStats:
    """Counters describing the sketch completion search."""

    partial_programs: int = 0
    pruned_partial: int = 0
    complete_programs: int = 0
    #: Of :attr:`pruned_partial`, how many the tier-1 interval prescreen
    #: decided (the completer's per-hole fills are the bulk deduction
    #: traffic, so this is where most of the prescreen's saving lands).
    pruned_by_prescreen: int = 0
    #: Node-boundary states offered to the observational-equivalence store.
    oe_candidates: int = 0
    #: Of those, states merged into an earlier representative (the duplicate
    #: completion work behind them was skipped).
    oe_merged: int = 0
    #: Sibling-fill groups pre-executed through ``batch_evaluate_fills``.
    sibling_batches: int = 0
    #: Individual hole fillings executed inside those groups.
    batched_fills: int = 0

    def merge(self, other: "CompletionStats") -> None:
        """Accumulate another stats object into this one."""
        self.partial_programs += other.partial_programs
        self.pruned_partial += other.pruned_partial
        self.complete_programs += other.complete_programs
        self.pruned_by_prescreen += other.pruned_by_prescreen
        self.oe_candidates += other.oe_candidates
        self.oe_merged += other.oe_merged
        self.sibling_batches += other.sibling_batches
        self.batched_fills += other.batched_fills


@dataclass
class _Frame:
    """One worklist entry: a partial program at a point in the completion.

    ``holes`` / ``arguments`` are set on argument-enumeration frames (the
    frame is iterating candidate fillings for ``holes[0]``); node-boundary
    frames (``holes is None``) advance to the next application node in the
    bottom-up order.
    """

    sketch: Hypothesis
    #: Index into the run's post-order node list (the next node to complete).
    position: int
    #: Remaining unbound first-order holes of the current node (argument
    #: frames only).
    holes: Optional[Sequence[Hole]] = None
    #: Lazy iterator over candidate arguments for ``holes[0]``.  ``None`` on
    #: an argument frame marks a stale iterator (a deadline fired inside the
    #: generator, which kills it); the frame rebuilds it on resume from
    #: :attr:`consumed` -- the enumeration is deterministic, so skipping the
    #: already-consumed prefix lands exactly on the in-flight candidate.
    arguments: Optional[Iterator] = None
    #: The concrete table the holes are enumerated against.
    context_table: Optional[Table] = None
    #: True when filling ``holes[0]`` completes the whole program (the
    #: subsequent CHECK subsumes the deduction query).
    completes: bool = False
    #: Arguments already pulled from the enumeration (for rebuilds).
    consumed: int = 0
    #: Arguments pulled ahead of processing for batched sibling evaluation
    #: (already counted in :attr:`consumed`; drained before the iterator).
    pending: List = field(default_factory=list)


@dataclass
class SketchCompleter:
    """Implements the FILLSKETCH procedure for one synthesis problem."""

    engine: DeductionEngine
    deadline: Optional[float] = None
    budget: Optional[int] = None
    stats: CompletionStats = field(default_factory=CompletionStats)
    #: Optional observational-equivalence store shared across every sketch
    #: of one synthesis run (``None`` disables merging -- the ``--no-oe``
    #: ablation).
    oe_store: Optional[OEStore] = None

    def check_deadline(self) -> None:
        """Raise :class:`CompletionTimeout` once the deadline has passed.

        Called on every worklist step *and* threaded into the argument
        enumerators, so a single huge ``enumerate_arguments`` space cannot
        blow past the per-task budget between checks.
        """
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise CompletionTimeout()

    def _charge_budget(self) -> None:
        if self.budget is None:
            return
        self._spent += 1
        if self._spent > self.budget:
            raise CompletionBudgetExceeded()

    # ------------------------------------------------------------------
    def start(self, sketch: Hypothesis) -> "CompletionRun":
        """Begin the iterative completion of one sketch.

        Resets the per-sketch budget; the returned :class:`CompletionRun`
        is stepped by the search kernel (or drained by :meth:`fill_sketch`).
        """
        self._spent = 0
        return CompletionRun(self, sketch)

    def fill_sketch(self, sketch: Hypothesis) -> Iterator[Hypothesis]:
        """Enumerate complete programs refining *sketch* (rule 4 of Figure 14).

        A generator facade over :class:`CompletionRun` for callers that want
        the classic pull interface; the kernel steps the run directly.  When
        the per-sketch budget aborts the run, its OE admissions are released
        before the exception propagates (see :meth:`CompletionRun.release`).
        """
        run = self.start(sketch)
        try:
            while not run.exhausted:
                program = run.step()
                if program is not None:
                    yield program
        finally:
            # Any early exit -- budget, deadline, or the caller abandoning
            # the generator -- leaves admitted states under-explored;
            # normal exhaustion keeps them (cross-sketch dedup is the point).
            if not run.exhausted:
                run.release()

    # ------------------------------------------------------------------
    def _admit(self, sketch: Hypothesis, remaining: int, admitted=None) -> bool:
        """Offer a node-boundary state to the OE store.

        Returns ``False`` when an observationally equal state was explored
        earlier (the frame is dropped).  States whose partial evaluation
        fails are never merged -- merging requires an exact observation.
        Newly admitted keys are appended to *admitted* so the owning run can
        withdraw them if its exploration is cut short.
        """
        if self.oe_store is None:
            return True
        evaluated = self.engine.evaluate_if_possible(sketch)
        if evaluated is None:
            return True
        key = OEStore.state_key(sketch, evaluated, remaining)
        if key is None:
            return True
        self.stats.oe_candidates += 1
        if not self.oe_store.admit(key):
            self.stats.oe_merged += 1
            return False
        if admitted is not None:
            admitted.append(key)
        return True

    def _deduce_partial(self, candidate: Hypothesis) -> bool:
        """Rule 3's deduction check for one partially filled sketch.

        ``learn=False``: per-hole fills come in bulk and mostly differ only
        in evaluated-table abstractions; they consult the lemma store (and
        the tier-1 prescreen) but are not worth a mining replay each.  The
        prescreen counter delta attributes each prune to the tier that
        decided it.
        """
        decided_before = self.engine.stats.prescreen_decided
        if self.engine.deduce(candidate, learn=False):
            return True
        self.stats.pruned_partial += 1
        if self.engine.stats.prescreen_decided > decided_before:
            self.stats.pruned_by_prescreen += 1
        return False

    def _context_table(self, sketch: Hypothesis, node: Apply) -> Optional[Table]:
        """The concrete table the node's first-order holes are enumerated against.

        For single-input components this is the (already completed and
        evaluated) table argument; components with several table arguments
        and first-order holes would use the concatenation of their columns
        (``T1 x ... x Tn`` in the paper) -- the built-in library has none.
        """
        try:
            evaluated = partial_evaluate(
                sketch, self.engine.inputs,
                memo=self.engine.evaluation_memo,
                exec_cache=self.engine.execution_cache,
            )
        except EvaluationFailure:
            return None
        tables = []
        for child in node.table_children:
            table = evaluated.get(child.node_id)
            if table is None:
                return None
            tables.append(table)
        if len(tables) == 1:
            return tables[0]
        return _concatenate_schemas(tables)

    def _param_of(self, node: Apply, hole: Hole):
        for index, child in enumerate(node.value_children):
            if child.node_id == hole.node_id:
                return node.component.value_params[index]
        raise KeyError(f"hole {hole.node_id} is not a parameter of node {node.node_id}")


class CompletionRun:
    """The iterative FILLSKETCH worklist for one sketch.

    Frames are popped LIFO, so the exploration is depth-first in exactly the
    order of the recursion this replaced: candidate programs surface in the
    same sequence, and the first program that passes CHECK is byte-identical
    to the recursive implementation's.  Each :meth:`step` processes one
    frame -- at most one candidate hole filling and one deduction query --
    which is the bounded work unit the search kernel's anytime API is built
    on.
    """

    __slots__ = ("completer", "sketch", "_order", "_stack", "_admitted")

    def __init__(self, completer: SketchCompleter, sketch: Hypothesis) -> None:
        self.completer = completer
        self.sketch = sketch
        self._order = _node_order(sketch)
        self._stack: List[_Frame] = []
        #: OE keys this run admitted, withdrawn if the run is cut short.
        self._admitted: List = []
        if completer._admit(sketch, remaining=len(self._order), admitted=self._admitted):
            self._stack.append(_Frame(sketch, 0))

    @property
    def exhausted(self) -> bool:
        """True when every frame has been processed."""
        return not self._stack

    def __len__(self) -> int:
        """Number of pending frames (partial programs in flight)."""
        return len(self._stack)

    # ------------------------------------------------------------------
    def step(self) -> Optional[Hypothesis]:
        """Process one worklist frame; return a complete program if one surfaced.

        Raises :class:`CompletionTimeout` when the deadline has expired and
        :class:`CompletionBudgetExceeded` when this sketch has used up its
        completion budget.
        """
        completer = self.completer
        completer.check_deadline()
        if not self._stack:
            return None
        frame = self._stack.pop()
        try:
            if frame.holes is not None:
                return self._advance_arguments(frame)
            return self._advance_node(frame)
        except CompletionTimeout:
            # The deadline fired mid-frame (inside the argument enumerator,
            # before the frame was re-pushed): restore it so a resumed run
            # continues exactly here.
            if not (self._stack and self._stack[-1] is frame):
                self._stack.append(frame)
            raise

    # ------------------------------------------------------------------
    def _advance_node(self, frame: _Frame) -> Optional[Hypothesis]:
        completer = self.completer
        if frame.position == len(self._order):
            if is_complete(frame.sketch):
                completer.stats.complete_programs += 1
                return frame.sketch
            return None
        node = _find_node(frame.sketch, self._order[frame.position])
        holes = [hole for hole in node.value_children if not hole.is_bound]
        if not holes:
            # Components without first-order parameters (e.g. inner_join)
            # still become evaluable once their table children are complete,
            # so rule 3's deduction check applies here too: the node's
            # concrete abstraction may already contradict the example.
            completer._charge_budget()
            completer.stats.partial_programs += 1
            if completer._deduce_partial(frame.sketch):
                self._push_boundary(frame.sketch, frame.position + 1)
            return None
        context_table = completer._context_table(frame.sketch, node)
        if context_table is None:
            # The table children failed to evaluate; no completion can succeed.
            return None
        self._push_arguments(frame.sketch, frame.position, holes, context_table)
        return None

    def _advance_arguments(self, frame: _Frame) -> Optional[Hypothesis]:
        completer = self.completer
        if frame.pending:
            argument = frame.pending.pop(0)
        else:
            if frame.arguments is None:
                frame.arguments = self._rebuild_arguments(frame)
            if len(frame.holes) == 1 and SIBLING_BATCH > 1:
                # Last hole of the node: sibling fillings differ only in this
                # argument, so pull a group ahead and pre-execute it as a
                # batch (results land in the execution cache).
                self._prefetch_siblings(frame)
                if not frame.pending:
                    return None
                argument = frame.pending.pop(0)
            else:
                try:
                    argument = next(frame.arguments, None)
                except CompletionTimeout:
                    # The deadline fired inside the enumeration generator,
                    # which is dead now; mark it for a rebuild so a resumed
                    # run re-enters the enumeration at the in-flight
                    # candidate (step() re-pushes the frame).
                    frame.arguments = None
                    raise
                if argument is None:
                    return None
                frame.consumed += 1
        # Re-push the frame first so the candidate's subtree (pushed below,
        # popped first) is fully explored before the next argument -- the
        # LIFO discipline that reproduces the recursion's DFS order.
        self._stack.append(frame)
        completer._charge_budget()
        hole, rest = frame.holes[0], frame.holes[1:]
        candidate = fill_value_hole(frame.sketch, hole, argument)
        completer.stats.partial_programs += 1
        # When this fill produces a fully complete program, the synthesizer
        # is about to evaluate and CHECK it anyway, which subsumes (and is
        # cheaper than) another deduction query; only partially-filled
        # sketches are worth a deduction call.
        if not frame.completes and not completer._deduce_partial(candidate):
            return None
        if rest:
            self._push_arguments(candidate, frame.position, rest, frame.context_table)
        else:
            self._push_boundary(candidate, frame.position + 1)
        return None

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Withdraw this run's OE admissions (exploration was cut short).

        Called when the per-sketch budget aborts the run: states this run
        admitted may have unexplored completion work behind them, so leaving
        them in the store would wrongly suppress a later observationally
        equal state whose budget could finish the job (the merge soundness
        argument assumes the representative was fully explored).
        """
        if self.completer.oe_store is not None and self._admitted:
            self.completer.oe_store.release(self._admitted)
        self._admitted = []

    # ------------------------------------------------------------------
    def _push_boundary(self, sketch: Hypothesis, position: int) -> None:
        """Advance to the next node, deduplicating through the OE store.

        Complete programs (no nodes remaining) are *not* offered to the
        store: merging them would only dedup CHECK calls, and CHECK's shape
        precheck is cheaper than fingerprinting a candidate output table.
        The merge win lives in the partial states, where a duplicate still
        has whole argument spaces ahead of it.
        """
        remaining = len(self._order) - position
        if remaining == 0 or self.completer._admit(
            sketch, remaining=remaining, admitted=self._admitted
        ):
            self._stack.append(_Frame(sketch, position))

    def _enumerate(self, frame: _Frame) -> Iterator:
        """The (deterministic) argument enumeration for ``frame.holes[0]``."""
        completer = self.completer
        node = _find_node(frame.sketch, self._order[frame.position])
        param = completer._param_of(node, frame.holes[0])
        return iter(
            enumerate_arguments(
                node.component, param, frame.context_table,
                deadline_check=completer.check_deadline,
            )
        )

    def _rebuild_arguments(self, frame: _Frame) -> Iterator:
        """Recreate a stale enumeration, skipping the consumed prefix."""
        iterator = self._enumerate(frame)
        for _ in range(frame.consumed):
            next(iterator)
        return iterator

    def _prefetch_siblings(self, frame: _Frame) -> None:
        """Pull up to :data:`SIBLING_BATCH` candidates and pre-execute them.

        The pulled candidates are parked in ``frame.pending`` (and counted in
        ``frame.consumed``, so deadline rebuilds skip them correctly); the
        group is handed to the deduction engine, which executes the fills
        through the component's batched executor and primes the execution
        cache.  A deadline firing mid-pull keeps the partial group pending --
        those candidates are then processed unbatched, which computes the
        same results.
        """
        completer = self.completer
        batch: List = []
        try:
            while len(batch) < SIBLING_BATCH:
                candidate = next(frame.arguments, None)
                if candidate is None:
                    break
                frame.consumed += 1
                batch.append(candidate)
        except CompletionTimeout:
            frame.arguments = None
            frame.pending = batch
            raise
        frame.pending = batch
        if len(batch) < 2:
            return
        node = _find_node(frame.sketch, self._order[frame.position])
        executed = completer.engine.batch_evaluate_fills(
            frame.sketch, node, frame.holes[0], batch
        )
        if executed:
            completer.stats.sibling_batches += 1
            completer.stats.batched_fills += executed

    def _push_arguments(
        self,
        sketch: Hypothesis,
        position: int,
        holes: Sequence[Hole],
        context_table: Table,
    ) -> None:
        completes = (
            len(holes) == 1 and len(unfilled_value_holes(sketch)) == 1
        )
        frame = _Frame(sketch, position, holes, None, context_table, completes)
        frame.arguments = self._enumerate(frame)
        self._stack.append(frame)


def _node_order(sketch: Hypothesis) -> List[int]:
    """Post-order list of application node ids (bottom-up completion order)."""
    order: List[int] = []

    def walk(node: Hypothesis) -> None:
        if isinstance(node, Apply):
            for child in node.table_children:
                walk(child)
            order.append(node.node_id)

    walk(sketch)
    return order


def _find_node(sketch: Hypothesis, node_id: int) -> Apply:
    for node in _iter_applications(sketch):
        if node.node_id == node_id:
            return node
    raise KeyError(f"node {node_id} not found in sketch")


def _iter_applications(node: Hypothesis) -> Iterator[Apply]:
    if isinstance(node, Apply):
        yield node
        for child in node.table_children:
            yield from _iter_applications(child)


def _concatenate_schemas(tables: Sequence[Table]) -> Table:
    """The schema product ``T1 x ... x Tn`` used by rule 3 of Figure 14.

    Only the header and a small sample of values matter for inhabitation, so
    the tables are concatenated column-wise, padding shorter tables with
    missing values and renaming duplicate columns.
    """
    columns: List[str] = []
    column_values: List[List] = []
    height = max(table.n_rows for table in tables)
    for table_index, table in enumerate(tables):
        for name in table.columns:
            unique_name = name if name not in columns else f"{name}.{table_index}"
            values = list(table.column_values(name))
            values += [None] * (height - len(values))
            columns.append(unique_name)
            column_values.append(values)
    rows = list(zip(*column_values)) if column_values else []
    return Table(columns, rows)
