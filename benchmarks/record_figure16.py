"""Record the Figure-16 perf trajectory as machine-readable JSON.

Runs the representative Figure-16 subset under the full spec2 configuration
and its ``--no-prescreen`` and ``--no-oe`` ablations, and writes
``BENCH_figure16.json`` with per-task wall times, prune counts and the
prescreen / OE / exec-cache counters, plus A/B comparison blocks quantifying
the tier-1 prescreen's end-to-end wall-clock win, the
observational-equivalence store's completion-work dedup, and the warm-start
knowledge base's cold-vs-warm differential (byte-identical programs and
trajectory, nonzero hit rate).  CI runs this on
every push and uploads the file as an artifact; re-record the checked-in
copy with::

    PYTHONPATH=src python benchmarks/record_figure16.py --timeout 20 --out BENCH_figure16.json

(Absolute numbers depend on the machine; the counters are deterministic.)
"""

import argparse
import json
import os
import platform
import sys
import tempfile

from repro.baselines import spec2_config, spec2_no_oe_config, spec2_no_prescreen_config
from repro.baselines.configurations import override_config
from repro.benchmarks import r_benchmark_suite, run_suite, suite_runs_json
from repro.benchmarks.kb_differential import run_kb_differential
from repro.benchmarks.stress import run_stress
from repro.dataframe.backend import numpy_available

from conftest import REPRESENTATIVE_BENCHMARKS


def kb_comparison(suite, timeout: float) -> dict:
    """Run the warm-start differential against a fresh temporary KB.

    Cold run populates the knowledge base, warm run replays the same tasks
    against it; the block records both wall times, the warm hit rate and
    the byte-identical gates (see ``repro.benchmarks.kb_differential``).
    """
    handle, kb_path = tempfile.mkstemp(prefix="repro-kb-", suffix=".sqlite")
    os.close(handle)
    os.unlink(kb_path)  # let sqlite create the file itself
    try:
        comparison = run_kb_differential(suite, timeout=timeout, kb_path=kb_path)
    finally:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(kb_path + suffix)
            except OSError:
                pass
    comparison["kb_path"] = "<temporary>"
    return comparison


def vectorized_comparison(suite, spec2_run, timeout: float) -> dict:
    """A/B the columnar execution backends (``--backend numpy`` vs python).

    Two halves: (1) the synthesis suite re-run on the numpy backend must
    synthesize byte-identical programs (backends are observationally
    identical, so this gate catches any semantic divergence end-to-end);
    (2) the large-table stress suite, where vectorization actually pays --
    synthesis tables are dozens of cells, so the adaptive kernels mostly
    delegate there and the suite walls stay near parity.  ``speedup`` is
    the best per-verb stress win (the headline vectorization number);
    ``stress`` has the full per-verb breakdown.
    """
    if not numpy_available():
        return {"numpy_available": False}
    numpy_run = run_suite(
        suite,
        override_config(spec2_config, backend="numpy"),
        timeout=timeout,
        label="spec2-numpy",
    )
    programs = lambda run: [  # noqa: E731
        (o.benchmark, o.solved, o.program) for o in run.outcomes
    ]
    stress = run_stress()
    speedups = [
        entry["speedup"]
        for entry in stress["verbs"].values()
        if entry["speedup"] is not None
    ]
    python_wall = round(sum(o.elapsed for o in spec2_run.outcomes), 4)
    numpy_wall = round(sum(o.elapsed for o in numpy_run.outcomes), 4)
    return {
        "numpy_available": True,
        "programs_identical": programs(spec2_run) == programs(numpy_run),
        "synthesis_wall_python_s": python_wall,
        "synthesis_wall_numpy_s": numpy_wall,
        "synthesis_wall_ratio": (
            round(python_wall / numpy_wall, 3) if numpy_wall else None
        ),
        "stress": stress,
        "stress_outputs_identical": all(
            entry["outputs_identical"] for entry in stress["verbs"].values()
        ),
        "speedup": max(speedups) if speedups else None,
    }


def record(timeout: float, full: bool = False) -> dict:
    """Run the prescreen and OE A/Bs on the Figure-16 subset and build the payload."""
    suite = r_benchmark_suite()
    if not full:
        suite = suite.subset(names=REPRESENTATIVE_BENCHMARKS)
    runs = {
        "spec2": run_suite(suite, spec2_config, timeout=timeout, label="spec2"),
        "spec2-no-prescreen": run_suite(
            suite, spec2_no_prescreen_config, timeout=timeout,
            label="spec2-no-prescreen",
        ),
        "spec2-no-oe": run_suite(
            suite, spec2_no_oe_config, timeout=timeout, label="spec2-no-oe",
        ),
    }
    # The per-run aggregates come from the shared reporting serialiser; the
    # comparison blocks only pair them up, so the two can never disagree.
    payload = suite_runs_json(runs)
    tiered, plain = payload["spec2"], payload["spec2-no-prescreen"]
    unmerged = payload["spec2-no-oe"]
    programs = lambda label: [  # noqa: E731
        (o.benchmark, o.solved, o.program) for o in runs[label].outcomes
    ]
    return {
        "suite": "figure16-full" if full else "figure16-representative",
        "timeout_s": timeout,
        "python": platform.python_version(),
        "runs": payload,
        "prescreen_comparison": {
            "wall_total_s": tiered["wall_total_s"],
            "wall_total_no_prescreen_s": plain["wall_total_s"],
            "speedup": (
                round(plain["wall_total_s"] / tiered["wall_total_s"], 3)
                if tiered["wall_total_s"] else None
            ),
            "smt_calls": tiered["smt_calls"],
            "smt_calls_no_prescreen": plain["smt_calls"],
            "prescreen_decided": tiered["prescreen_decided"],
            "prescreen_fallback": tiered["prescreen_fallback"],
            "prescreen_hit_rate": tiered["prescreen_hit_rate"],
            "programs_identical": programs("spec2") == programs("spec2-no-prescreen"),
        },
        "oe_comparison": {
            "wall_total_s": tiered["wall_total_s"],
            "wall_total_no_oe_s": unmerged["wall_total_s"],
            "oe_candidates": tiered["oe_candidates"],
            "oe_merged": tiered["oe_merged"],
            "oe_merge_rate": tiered["oe_merge_rate"],
            "partial_programs": tiered["partial_programs"],
            "partial_programs_no_oe": unmerged["partial_programs"],
            "partial_programs_saved": (
                unmerged["partial_programs"] - tiered["partial_programs"]
            ),
            "programs_identical": programs("spec2") == programs("spec2-no-oe"),
        },
        "kb_comparison": kb_comparison(suite, timeout),
        "vectorized_comparison": vectorized_comparison(suite, runs["spec2"], timeout),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=20.0)
    parser.add_argument("--out", default="BENCH_figure16.json")
    parser.add_argument(
        "--full", action="store_true",
        help="run all 80 r-suite benchmarks instead of the representative subset",
    )
    args = parser.parse_args(argv)
    payload = record(args.timeout, full=args.full)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    comparison = payload["prescreen_comparison"]
    oe = payload["oe_comparison"]
    print(
        f"wall {comparison['wall_total_s']}s vs {comparison['wall_total_no_prescreen_s']}s "
        f"no-prescreen (speedup {comparison['speedup']}x), "
        f"prescreen hit-rate {comparison['prescreen_hit_rate']}, "
        f"programs identical: {comparison['programs_identical']}",
        file=sys.stderr,
    )
    print(
        f"oe merged {oe['oe_merged']}/{oe['oe_candidates']} states, "
        f"partial programs {oe['partial_programs']} vs "
        f"{oe['partial_programs_no_oe']} no-oe "
        f"({oe['partial_programs_saved']} saved), "
        f"programs identical: {oe['programs_identical']}",
        file=sys.stderr,
    )
    kb = payload["kb_comparison"]
    print(
        f"kb warm-start: cold {kb['cold_wall_s']}s vs warm {kb['warm_wall_s']}s "
        f"(speedup {kb['speedup']}x), warm hit-rate {kb['warm_kb']['hit_rate']}, "
        f"programs identical: {kb['programs_identical']}, "
        f"counters identical: {kb['counters_identical']}",
        file=sys.stderr,
    )
    # The acceptance gates (also enforced by CI): byte-identical programs
    # under both ablations, a tier-1 hit rate of at least 50%, and a live
    # OE store (merges > 0, never more completion work than the ablation).
    if not comparison["programs_identical"]:
        return 1
    if not comparison["prescreen_hit_rate"] or comparison["prescreen_hit_rate"] < 0.5:
        return 1
    if not oe["programs_identical"]:
        return 1
    if not oe["oe_merged"] or oe["partial_programs_saved"] < 0:
        return 1
    # Warm-start gates: the warm run must synthesize byte-identical programs
    # with an identical search trajectory, and must actually hit the KB.
    if not kb["programs_identical"] or not kb["counters_identical"]:
        return 1
    if not kb["warm_kb"]["hits"]:
        return 1
    vec = payload["vectorized_comparison"]
    if vec["numpy_available"]:
        print(
            f"vectorized: synthesis wall {vec['synthesis_wall_python_s']}s python vs "
            f"{vec['synthesis_wall_numpy_s']}s numpy, "
            f"programs identical: {vec['programs_identical']}, "
            f"stress speedup (best verb): {vec['speedup']}x, "
            f"stress outputs identical: {vec['stress_outputs_identical']}",
            file=sys.stderr,
        )
        # Backend gates: byte-identical programs on the synthesis suite,
        # fingerprint-identical outputs and a real (>1x) win at stress scale.
        if not vec["programs_identical"] or not vec["stress_outputs_identical"]:
            return 1
        if not vec["speedup"] or vec["speedup"] <= 1:
            return 1
    else:
        print("vectorized: numpy unavailable, backend A/B skipped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
