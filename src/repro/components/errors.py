"""Errors raised while evaluating table-transformation components.

During synthesis a candidate program frequently applies a component to a
table it does not fit (e.g. ``spread`` over duplicate identifiers, ``separate``
over a column with nothing to split on).  Such candidates are simply pruned,
so all executor errors derive from a single base class the synthesizer can
catch in one place.
"""

from ..dataframe.errors import DataFrameError


class ComponentError(Exception):
    """Base class for every error raised by the component executor."""


class InvalidArgumentError(ComponentError):
    """A component received arguments that are structurally invalid."""


class EvaluationError(ComponentError):
    """A component could not be applied to the given tables."""


#: Exceptions that indicate a candidate program is simply not applicable to
#: its inputs (as opposed to a bug in the executor).  The synthesizer treats
#: any of these as "prune this candidate".
PRUNABLE_ERRORS = (ComponentError, DataFrameError, ZeroDivisionError)
