"""Tests for cell values and cell types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe.cells import (
    CellType,
    coerce_value,
    format_number,
    format_value,
    infer_cell_type,
    infer_column_type,
    is_missing,
    is_numeric,
    normalize_number,
    value_sort_key,
    values_equal,
)
from repro.dataframe.errors import CellTypeError


class TestTypeInference:
    def test_numbers_are_num(self):
        assert infer_cell_type(3) is CellType.NUM
        assert infer_cell_type(3.5) is CellType.NUM

    def test_strings_are_string(self):
        assert infer_cell_type("abc") is CellType.STR

    def test_missing_is_untyped(self):
        assert infer_cell_type(None) is None

    def test_bool_is_rejected(self):
        with pytest.raises(CellTypeError):
            infer_cell_type(True)

    def test_column_type_ignores_missing(self):
        assert infer_column_type([None, 3, None]) is CellType.NUM

    def test_all_missing_column_defaults_to_string(self):
        assert infer_column_type([None, None]) is CellType.STR

    def test_mixed_column_raises(self):
        with pytest.raises(CellTypeError):
            infer_column_type([1, "a"])


class TestCoercion:
    def test_num_column_rejects_string(self):
        with pytest.raises(CellTypeError):
            coerce_value("x", CellType.NUM)

    def test_string_column_formats_number(self):
        assert coerce_value(5, CellType.STR) == "5"

    def test_missing_passes_through(self):
        assert coerce_value(None, CellType.NUM) is None
        assert coerce_value(None, CellType.STR) is None

    def test_integral_float_normalises_to_int(self):
        assert normalize_number(4.0) == 4
        assert isinstance(normalize_number(4.0), int)

    def test_format_number(self):
        assert format_number(2.0) == "2"
        assert format_number(2.5) == "2.5"


class TestEqualityAndOrdering:
    def test_float_tolerance(self):
        assert values_equal(0.6666667, 2 / 3)
        assert not values_equal(0.66, 2 / 3)

    def test_missing_equals_missing_only(self):
        assert values_equal(None, None)
        assert not values_equal(None, 0)

    def test_string_equality(self):
        assert values_equal("a", "a")
        assert not values_equal("a", "b")

    def test_sort_key_orders_missing_numbers_strings(self):
        values = ["b", 3, None, 1, "a"]
        ordered = sorted(values, key=value_sort_key)
        assert ordered == [None, 1, 3, "a", "b"]

    def test_format_value(self):
        assert format_value(None) == "NA"
        assert format_value(3.0) == "3"
        assert format_value("x") == "x"


class TestProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_numbers_equal_themselves(self, value):
        assert values_equal(value, value)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float_reflexive(self, value):
        assert values_equal(value, value)

    @given(st.lists(st.one_of(st.integers(), st.text(max_size=5), st.none()), max_size=20))
    def test_sort_key_is_total(self, values):
        ordered = sorted(values, key=value_sort_key)
        assert len(ordered) == len(values)

    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_is_numeric_and_missing_disjoint(self, value):
        assert is_numeric(value)
        assert not is_missing(value)
